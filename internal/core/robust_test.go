package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
)

// TestParseNeverPanics mutates a valid container thousands of ways;
// Parse must either reject the input or return a structurally valid
// VBS — and never panic. A reconfiguration controller faces exactly
// this input channel.
func TestParseNeverPanics(t *testing.T) {
	f := runFlow(t, 40, 20, 5, 8, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	good, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		data := append([]byte(nil), good...)
		switch trial % 4 {
		case 0: // single byte flip
			data[rng.Intn(len(data))] ^= byte(1 << uint(rng.Intn(8)))
		case 1: // truncation
			data = data[:rng.Intn(len(data))]
		case 2: // multiple flips
			for k := 0; k < 4; k++ {
				data[rng.Intn(len(data))] ^= byte(rng.Intn(256))
			}
		case 3: // garbage tail
			data = append(data[:rng.Intn(len(data))], make([]byte, rng.Intn(64))...)
		}
		parsed, err := Parse(data)
		if err != nil {
			continue
		}
		if vErr := parsed.Validate(); vErr != nil {
			t.Fatalf("trial %d: Parse accepted container failing Validate: %v", trial, vErr)
		}
	}
}

// TestDecodeNeverPanicsOnParsedMutants goes one step further: whatever
// Parse accepts must either decode or error cleanly.
func TestDecodeNeverPanicsOnParsedMutants(t *testing.T) {
	f := runFlow(t, 41, 15, 5, 8, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	decoded := 0
	for trial := 0; trial < 800; trial++ {
		data := append([]byte(nil), good...)
		data[rng.Intn(len(data))] ^= byte(1 << uint(rng.Intn(8)))
		parsed, err := Parse(data)
		if err != nil {
			continue
		}
		if _, err := parsed.Decode(); err == nil {
			decoded++
		}
	}
	// Most single-bit flips that survive parsing should still decode
	// (they land in logic payloads); the point is only that nothing
	// panicked.
	t.Logf("%d mutants decoded cleanly", decoded)
}

// TestEncodeIsDeterministic: identical inputs must produce identical
// containers; the runtime depends on decode determinism and the
// feedback loop on encode determinism.
func TestEncodeIsDeterministic(t *testing.T) {
	f := runFlow(t, 42, 25, 6, 8, 6)
	var prev []byte
	for i := 0; i < 3; i++ {
		v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 2})
		if err != nil {
			t.Fatal(err)
		}
		data, err := v.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && string(prev) != string(data) {
			t.Fatal("two encodes of the same routing differ")
		}
		prev = data
	}
}

// TestDecodeIdempotent: decoding the same VBS twice into blank fabrics
// yields identical bits (the de-virtualization router is stateless
// across runs).
func TestDecodeIdempotent(t *testing.T) {
	f := runFlow(t, 43, 20, 5, 8, 6)
	for _, cluster := range []int{1, 3} {
		v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: cluster})
		if err != nil {
			t.Fatal(err)
		}
		a, err := v.Decode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := v.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("cluster %d: two decodes differ", cluster)
		}
	}
}

// TestRawFallbackOnlyVBS: force every region raw (reorder disabled,
// reservation useless) by using MaxReorder=1 on a congested task and
// check the format still round-trips and verifies. Exercises the raw
// path end to end.
func TestRawFallbackPathRoundTrip(t *testing.T) {
	f := runFlow(t, 44, 30, 6, 8, 6)
	v, stats, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 4, MaxReorder: 1, DisableReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if err := bitstream.Verify(decoded, f.d, f.pl, f.gr); err != nil {
		t.Fatal(err)
	}
	t.Logf("raw fallbacks: %d of %d used regions", stats.RawRegions, stats.UsedRegions)
}
