//go:build !race

package core

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
