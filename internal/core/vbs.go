// Package core implements the Virtual Bit-Stream (VBS), the paper's
// contribution: a compressed FPGA configuration format abstracted from
// low-level routing detail and from the task's final position on the
// fabric (Section II). A VBS stores, per used macro (or per cluster of
// macros, Section IV-B), the logic-block contents and a list of routed
// connections between macro I/O indices; the de-virtualization router
// (package devirt) re-expands the list into raw switch states at load
// time, at any physical location.
//
// # Binary format
//
// The bit layout follows Table I of the paper, with three documented
// additions the paper's text requires but its table omits: a per-entry
// mode flag selecting the raw-coding fallback (Section III-B), a
// per-member logic-present bitmap (so unused macros inside a cluster
// carry no logic payload), and count fields wide enough for their
// maximum values. All size figures reported by Size include these bits.
//
//	header  task width-1, height-1    ceil(log2(max(w,h))) bits each
//	        entry count               ceil(log2(wR*hR+1)) bits
//	entry   position X, Y             ceil(log2(max(wR,hR))) bits each
//	        logic-present bitmap      c*c bits
//	        logic data                NLB bits per present member
//	        mode                      1 bit (0 coded, 1 raw fallback)
//	 coded  route count               ceil(log2(2*W*c)) bits
//	        connections               route count × 2M bits (in, out)
//	 raw    routing payload           (Nraw-NLB) bits per actual member
//
// where wR×hR is the task size in regions (clusters) and
// M = ceil(log2(4Wc + c²L + 1)).
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/devirt"
)

// Conn is one coded connection: two cluster I/O codes to be joined by
// the de-virtualization router.
type Conn struct {
	In, Out devirt.IOCode
}

// LogicItem is the logic configuration of one member macro.
type LogicItem struct {
	// Member indexes the region's nominal c×c member grid (j*c + i).
	Member int
	// Data holds the NLB logic bits.
	Data *bits.Vec
}

// Entry is the coding of one used region (a macro at cluster size 1).
type Entry struct {
	// X, Y is the region position within the task, in region units.
	X, Y int
	// Logic lists present members' logic payloads in member order.
	Logic []LogicItem
	// Raw selects the fallback coding; Conns is then empty and RawBits
	// holds each actual member's routing bits in member order.
	Raw     bool
	Conns   []Conn
	RawBits []*bits.Vec
}

// VBS is a complete Virtual Bit-Stream for one hardware task.
type VBS struct {
	// P is the macro architecture the task was compiled for.
	P arch.Params
	// Cluster is the coding granularity c (1 = one macro per entry).
	Cluster int
	// TaskW, TaskH are the task dimensions in macros.
	TaskW, TaskH int
	// Entries lists used regions in row-major position order.
	Entries []Entry
}

// Validate checks structural sanity of the container.
func (v *VBS) Validate() error {
	if err := v.P.Validate(); err != nil {
		return err
	}
	if v.Cluster < 1 {
		return fmt.Errorf("core: cluster size %d", v.Cluster)
	}
	if v.TaskW < 1 || v.TaskH < 1 {
		return fmt.Errorf("core: task %dx%d", v.TaskW, v.TaskH)
	}
	wR, hR := v.RegionsW(), v.RegionsH()
	prev := -1
	for i := range v.Entries {
		e := &v.Entries[i]
		if e.X < 0 || e.X >= wR || e.Y < 0 || e.Y >= hR {
			return fmt.Errorf("core: entry %d at (%d,%d) outside %dx%d regions", i, e.X, e.Y, wR, hR)
		}
		pos := e.Y*wR + e.X
		if pos <= prev {
			return fmt.Errorf("core: entries not in row-major order at %d", i)
		}
		prev = pos
		cw, ch := v.RegionDims(e.X, e.Y)
		for _, li := range e.Logic {
			j, ic := li.Member/v.Cluster, li.Member%v.Cluster
			if ic >= cw || j >= ch {
				return fmt.Errorf("core: entry %d logic member %d outside %dx%d region", i, li.Member, cw, ch)
			}
			if li.Data == nil || li.Data.Len() != v.P.NLB() {
				return fmt.Errorf("core: entry %d logic member %d payload malformed", i, li.Member)
			}
		}
		if e.Raw {
			if len(e.Conns) != 0 {
				return fmt.Errorf("core: entry %d is raw but has connections", i)
			}
			if len(e.RawBits) != cw*ch {
				return fmt.Errorf("core: entry %d raw payload count %d, want %d", i, len(e.RawBits), cw*ch)
			}
			for _, rb := range e.RawBits {
				if rb == nil || rb.Len() != v.P.NRaw()-v.P.NLB() {
					return fmt.Errorf("core: entry %d raw payload malformed", i)
				}
			}
		} else if len(e.Conns) > v.MaxRoutes() {
			return fmt.Errorf("core: entry %d has %d connections, field holds %d", i, len(e.Conns), v.MaxRoutes())
		}
	}
	return nil
}

// RegionsW returns the task width in regions, ceil(TaskW/Cluster).
func (v *VBS) RegionsW() int { return (v.TaskW + v.Cluster - 1) / v.Cluster }

// RegionsH returns the task height in regions.
func (v *VBS) RegionsH() int { return (v.TaskH + v.Cluster - 1) / v.Cluster }

// RegionDims returns the actual member columns and rows of region
// (rx, ry), accounting for truncation at the task edge.
func (v *VBS) RegionDims(rx, ry int) (cw, ch int) {
	cw = v.TaskW - rx*v.Cluster
	if cw > v.Cluster {
		cw = v.Cluster
	}
	ch = v.TaskH - ry*v.Cluster
	if ch > v.Cluster {
		ch = v.Cluster
	}
	return cw, ch
}

// Region returns the devirt region shape of region (rx, ry).
func (v *VBS) Region(rx, ry int) devirt.Region {
	cw, ch := v.RegionDims(rx, ry)
	return devirt.Region{P: v.P, Nominal: v.Cluster, CW: cw, CH: ch}
}

// MBits returns the connection endpoint width M for this VBS.
func (v *VBS) MBits() int {
	return devirt.Region{P: v.P, Nominal: v.Cluster, CW: 1, CH: 1}.MBits()
}

// RouteCountBits returns the width of the per-entry route count field,
// ceil(log2(2*W*c)) (Table I generalized to clusters).
func (v *VBS) RouteCountBits() int { return bits.CeilLog2(2 * v.P.W * v.Cluster) }

// MaxRoutes returns the largest representable route count.
func (v *VBS) MaxRoutes() int { return 1<<uint(v.RouteCountBits()) - 1 }

// CoordBits returns the width of the task width/height fields.
func (v *VBS) CoordBits() int {
	m := v.TaskW
	if v.TaskH > m {
		m = v.TaskH
	}
	return bits.CeilLog2(m)
}

// RegionCoordBits returns the width of entry position fields.
func (v *VBS) RegionCoordBits() int {
	m := v.RegionsW()
	if v.RegionsH() > m {
		m = v.RegionsH()
	}
	return bits.CeilLog2(m)
}

// CountBits returns the width of the entry count field.
func (v *VBS) CountBits() int {
	return bits.CeilLog2(v.RegionsW()*v.RegionsH() + 1)
}

// HeaderSizeBits returns the header size in the paper-ideal accounting.
func (v *VBS) HeaderSizeBits() int { return 2*v.CoordBits() + v.CountBits() }

// EntrySizeBits returns one entry's size in bits.
func (v *VBS) EntrySizeBits(e *Entry) int {
	c := v.Cluster
	n := 2*v.RegionCoordBits() + c*c + 1 // position, bitmap, mode
	n += len(e.Logic) * v.P.NLB()
	if e.Raw {
		for range e.RawBits {
			n += v.P.NRaw() - v.P.NLB()
		}
	} else {
		n += v.RouteCountBits()
		n += len(e.Conns) * 2 * v.MBits()
	}
	return n
}

// Size returns the total VBS size in bits under the paper-ideal
// accounting (no container preamble, no byte padding). This is the
// quantity plotted in Figures 4 and 5.
func (v *VBS) Size() int {
	n := v.HeaderSizeBits()
	for i := range v.Entries {
		n += v.EntrySizeBits(&v.Entries[i])
	}
	return n
}

// RawSizeBits returns the size of the equivalent raw bit-stream,
// TaskW × TaskH × Nraw, the paper's comparison baseline.
func (v *VBS) RawSizeBits() int { return v.TaskW * v.TaskH * v.P.NRaw() }

// CompressionRatio returns Size/RawSizeBits: the "percent of the
// original raw bit-stream size" metric of Figures 4 and 5 (smaller is
// better; 0.41 means the VBS is 41% of the raw size).
func (v *VBS) CompressionRatio() float64 {
	return float64(v.Size()) / float64(v.RawSizeBits())
}

// CompressionFactor returns RawSizeBits/Size (the "2.5x" style figure).
func (v *VBS) CompressionFactor() float64 {
	return float64(v.RawSizeBits()) / float64(v.Size())
}
