package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/devirt"
)

// Container format: a small self-describing preamble (so a controller
// can parse a VBS file without out-of-band metadata), followed by the
// bit-exact Table I payload.
//
//	magic   "VBS1"     4 bytes
//	version uint8      currently 1
//	W       uint16     channel width
//	K       uint8      LUT size
//	cluster uint8      coding granularity c
//	taskW   uint16     task width in macros
//	taskH   uint16     task height in macros
//	payload bit fields per the package comment, zero-padded to a byte
const vbsMagic = "VBS1"

const vbsVersion = 1

// Encode serializes the VBS container.
func (v *VBS) Encode() ([]byte, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	header := make([]byte, 13)
	copy(header, vbsMagic)
	header[4] = vbsVersion
	binary.BigEndian.PutUint16(header[5:], uint16(v.P.W))
	header[7] = uint8(v.P.K)
	header[8] = uint8(v.Cluster)
	binary.BigEndian.PutUint16(header[9:], uint16(v.TaskW))
	binary.BigEndian.PutUint16(header[11:], uint16(v.TaskH))

	w := bits.NewWriter(v.Size())
	w.WriteUint(uint64(v.TaskW-1), v.CoordBits())
	w.WriteUint(uint64(v.TaskH-1), v.CoordBits())
	w.WriteUint(uint64(len(v.Entries)), v.CountBits())
	c := v.Cluster
	for i := range v.Entries {
		e := &v.Entries[i]
		w.WriteUint(uint64(e.X), v.RegionCoordBits())
		w.WriteUint(uint64(e.Y), v.RegionCoordBits())
		present := make([]bool, c*c)
		for _, li := range e.Logic {
			present[li.Member] = true
		}
		for _, p := range present {
			w.WriteBool(p)
		}
		for _, li := range e.Logic {
			w.WriteVec(li.Data)
		}
		w.WriteBool(e.Raw)
		if e.Raw {
			for _, rb := range e.RawBits {
				w.WriteVec(rb)
			}
		} else {
			w.WriteUint(uint64(len(e.Conns)), v.RouteCountBits())
			m := v.MBits()
			for _, cn := range e.Conns {
				w.WriteUint(uint64(cn.In), m)
				w.WriteUint(uint64(cn.Out), m)
			}
		}
	}
	w.Align()
	return append(header, w.Bytes()...), nil
}

// Parse reads a VBS container produced by Encode.
func Parse(data []byte) (*VBS, error) {
	if len(data) < 13 || string(data[:4]) != vbsMagic {
		return nil, fmt.Errorf("core: bad magic")
	}
	if data[4] != vbsVersion {
		return nil, fmt.Errorf("core: unsupported version %d", data[4])
	}
	v := &VBS{
		P: arch.Params{
			W: int(binary.BigEndian.Uint16(data[5:])),
			K: int(data[7]),
		},
		Cluster: int(data[8]),
		TaskW:   int(binary.BigEndian.Uint16(data[9:])),
		TaskH:   int(binary.BigEndian.Uint16(data[11:])),
	}
	if err := v.P.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if v.Cluster < 1 || v.TaskW < 1 || v.TaskH < 1 {
		return nil, fmt.Errorf("core: malformed preamble")
	}
	r := bits.NewReader(data[13:])
	tw, err := r.ReadUint(v.CoordBits())
	if err != nil {
		return nil, fmt.Errorf("core: header: %w", err)
	}
	th, err := r.ReadUint(v.CoordBits())
	if err != nil {
		return nil, fmt.Errorf("core: header: %w", err)
	}
	if int(tw)+1 != v.TaskW || int(th)+1 != v.TaskH {
		return nil, fmt.Errorf("core: preamble/payload dimension mismatch")
	}
	count, err := r.ReadUint(v.CountBits())
	if err != nil {
		return nil, fmt.Errorf("core: header: %w", err)
	}
	if count > uint64(v.RegionsW()*v.RegionsH()) {
		return nil, fmt.Errorf("core: entry count %d exceeds region count", count)
	}
	c := v.Cluster
	for i := 0; i < int(count); i++ {
		var e Entry
		x, err := r.ReadUint(v.RegionCoordBits())
		if err != nil {
			return nil, fmt.Errorf("core: entry %d: %w", i, err)
		}
		y, err := r.ReadUint(v.RegionCoordBits())
		if err != nil {
			return nil, fmt.Errorf("core: entry %d: %w", i, err)
		}
		e.X, e.Y = int(x), int(y)
		if e.X >= v.RegionsW() || e.Y >= v.RegionsH() {
			return nil, fmt.Errorf("core: entry %d position (%d,%d) out of range", i, e.X, e.Y)
		}
		present := make([]bool, c*c)
		for m := range present {
			b, err := r.ReadBool()
			if err != nil {
				return nil, fmt.Errorf("core: entry %d bitmap: %w", i, err)
			}
			present[m] = b
		}
		for m, p := range present {
			if !p {
				continue
			}
			data, err := r.ReadVec(v.P.NLB())
			if err != nil {
				return nil, fmt.Errorf("core: entry %d logic: %w", i, err)
			}
			e.Logic = append(e.Logic, LogicItem{Member: m, Data: data})
		}
		raw, err := r.ReadBool()
		if err != nil {
			return nil, fmt.Errorf("core: entry %d mode: %w", i, err)
		}
		e.Raw = raw
		if raw {
			cw, ch := v.RegionDims(e.X, e.Y)
			for m := 0; m < cw*ch; m++ {
				rb, err := r.ReadVec(v.P.NRaw() - v.P.NLB())
				if err != nil {
					return nil, fmt.Errorf("core: entry %d raw payload: %w", i, err)
				}
				e.RawBits = append(e.RawBits, rb)
			}
		} else {
			n, err := r.ReadUint(v.RouteCountBits())
			if err != nil {
				return nil, fmt.Errorf("core: entry %d route count: %w", i, err)
			}
			m := v.MBits()
			for k := 0; k < int(n); k++ {
				in, err := r.ReadUint(m)
				if err != nil {
					return nil, fmt.Errorf("core: entry %d connection %d: %w", i, k, err)
				}
				out, err := r.ReadUint(m)
				if err != nil {
					return nil, fmt.Errorf("core: entry %d connection %d: %w", i, k, err)
				}
				e.Conns = append(e.Conns, Conn{In: devirt.IOCode(in), Out: devirt.IOCode(out)})
			}
		}
		v.Entries = append(v.Entries, e)
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("core: parsed container invalid: %w", err)
	}
	return v, nil
}
