//go:build race

package core

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops items under -race, so steady-state allocation
// assertions are meaningless there.
const raceEnabled = true
