package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/bitstream"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
)

func testDesign(seed int64, nLB, nIn, nOut, k int) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "t", K: k}
	var nets []netlist.NetID
	for i := 0; i < nIn; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(k-1) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			// Bias toward recent nets for locality, like real circuits.
			if rng.Intn(3) > 0 && len(nets) > 10 {
				ins[j] = nets[len(nets)-1-rng.Intn(10)]
			} else {
				ins[j] = nets[rng.Intn(len(nets))]
			}
		}
		truth := bits.NewVec(1 << uint(k))
		for b := 0; b < truth.Len(); b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		_, n := d.AddLogicBlock("lb", ins, truth, rng.Intn(4) == 0)
		nets = append(nets, n)
	}
	for i := 0; i < nOut; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	return d
}

type flow struct {
	d   *netlist.Design
	pl  *place.Placement
	gr  *rrg.Graph
	res *route.Result
}

func runFlow(t testing.TB, seed int64, nLB, size, w, k int) *flow {
	t.Helper()
	d := testDesign(seed, nLB, 5, 5, k)
	pl, err := place.Place(d, arch.GridForSize(size), place.Options{Seed: seed, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: w, K: k}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &flow{d: d, pl: pl, gr: gr, res: res}
}

// TestEncodeDecodeEquivalence is the paper's central guarantee: the
// decoded VBS implements the same netlist connectivity as the original
// routing, for several designs and cluster sizes. (Encode itself runs
// the feedback verification; this test asserts it and re-checks
// explicitly.)
func TestEncodeDecodeEquivalence(t *testing.T) {
	for _, cluster := range []int{1, 2, 3} {
		for seed := int64(1); seed <= 3; seed++ {
			f := runFlow(t, seed, 30, 7, 8, 6)
			v, stats, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: cluster})
			if err != nil {
				t.Fatalf("cluster %d seed %d: %v", cluster, seed, err)
			}
			decoded, err := v.Decode()
			if err != nil {
				t.Fatalf("cluster %d seed %d decode: %v", cluster, seed, err)
			}
			if err := bitstream.Verify(decoded, f.d, f.pl, f.gr); err != nil {
				t.Fatalf("cluster %d seed %d verify: %v", cluster, seed, err)
			}
			if stats.UsedRegions == 0 || stats.Connections == 0 {
				t.Errorf("cluster %d seed %d: empty stats %+v", cluster, seed, stats)
			}
		}
	}
}

// TestVBSSmallerThanRaw: the headline property, Figure 4. With the raw
// fallback the VBS can never exceed raw size by more than the entry
// overhead; in practice it must be well below.
func TestVBSSmallerThanRaw(t *testing.T) {
	f := runFlow(t, 4, 40, 8, 12, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := v.CompressionRatio()
	if ratio >= 1.0 {
		t.Errorf("compression ratio %.2f, VBS not smaller than raw", ratio)
	}
	if ratio <= 0 {
		t.Errorf("ratio %.2f nonsensical", ratio)
	}
	if v.CompressionFactor() <= 1.0 {
		t.Errorf("factor %.2f should exceed 1", v.CompressionFactor())
	}
}

// TestClusteringImprovesCompression reproduces the Figure 5 trend on a
// small design: cluster size 2 compresses better than cluster size 1.
func TestClusteringImprovesCompression(t *testing.T) {
	f := runFlow(t, 5, 40, 8, 12, 6)
	v1, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 1})
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() >= v1.Size() {
		t.Errorf("cluster 2 size %d >= cluster 1 size %d", v2.Size(), v1.Size())
	}
}

// TestRelocation: decoding the same VBS at different positions yields
// identical macro configurations, shifted (Section V's relocation
// claim).
func TestRelocation(t *testing.T) {
	f := runFlow(t, 6, 25, 6, 8, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	big := arch.Grid{Width: v.TaskW + 7, Height: v.TaskH + 5}
	positions := []struct{ x, y int }{{0, 0}, {3, 2}, {7, 5}, {1, 4}}
	var reference *bitstream.Raw
	for _, pos := range positions {
		target := bitstream.New(v.P, big)
		if err := v.DecodeInto(target, pos.x, pos.y); err != nil {
			t.Fatalf("decode at (%d,%d): %v", pos.x, pos.y, err)
		}
		if reference == nil {
			reference = target
			continue
		}
		// Compare the task rectangle against position (0,0).
		for x := 0; x < v.TaskW; x++ {
			for y := 0; y < v.TaskH; y++ {
				a := reference.At(x, y).Vec()
				b := target.At(pos.x+x, pos.y+y).Vec()
				if !a.Equal(b) {
					t.Fatalf("macro (%d,%d) differs when relocated to (%d,%d)", x, y, pos.x, pos.y)
				}
			}
		}
		// Outside the task rectangle everything stays blank.
		for x := 0; x < big.Width; x++ {
			for y := 0; y < big.Height; y++ {
				inside := x >= pos.x && x < pos.x+v.TaskW && y >= pos.y && y < pos.y+v.TaskH
				if !inside && target.At(x, y).Vec().OnesCount() != 0 {
					t.Fatalf("macro (%d,%d) outside task is configured", x, y)
				}
			}
		}
	}
}

func TestDecodeIntoBoundsCheck(t *testing.T) {
	f := runFlow(t, 7, 15, 5, 8, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	small := bitstream.New(v.P, arch.Grid{Width: v.TaskW - 1, Height: v.TaskH})
	if err := v.DecodeInto(small, 0, 0); err == nil {
		t.Error("oversized task accepted")
	}
	big := bitstream.New(v.P, arch.Grid{Width: v.TaskW + 2, Height: v.TaskH + 2})
	if err := v.DecodeInto(big, 3, 0); err == nil {
		t.Error("out-of-bounds placement accepted")
	}
	wrongArch := bitstream.New(arch.Params{W: 9, K: 6}, arch.Grid{Width: v.TaskW, Height: v.TaskH})
	if err := v.DecodeInto(wrongArch, 0, 0); err == nil {
		t.Error("architecture mismatch accepted")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	for _, cluster := range []int{1, 2, 4} {
		f := runFlow(t, 8, 25, 6, 8, 6)
		v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: cluster})
		if err != nil {
			t.Fatal(err)
		}
		data, err := v.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("cluster %d: %v", cluster, err)
		}
		// The parsed VBS must decode to the identical raw bitstream.
		a, err := v.Decode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("cluster %d: decode differs after serialization", cluster)
		}
		// Size accounting: the payload must be Size() bits plus byte
		// padding, after the 13-byte preamble.
		wantBytes := 13 + (v.Size()+7)/8
		if len(data) != wantBytes {
			t.Errorf("cluster %d: encoded %d bytes, want %d (Size=%d bits)",
				cluster, len(data), wantBytes, v.Size())
		}
	}
}

func TestParseErrors(t *testing.T) {
	f := runFlow(t, 9, 10, 4, 8, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic", append([]byte("XYZ1"), good[4:]...)},
		{"version", func() []byte { b := append([]byte(nil), good...); b[4] = 9; return b }()},
		{"truncated", good[:20]},
		{"bad arch", func() []byte { b := append([]byte(nil), good...); b[5], b[6] = 0, 0; return b }()},
		{"zero cluster", func() []byte { b := append([]byte(nil), good...); b[8] = 0; return b }()},
	}
	for _, c := range cases {
		if _, err := Parse(c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestMacroSkipping: unused regions must not appear in the container.
func TestMacroSkipping(t *testing.T) {
	// Tiny design on a large grid: most macros are empty.
	f := runFlow(t, 10, 6, 8, 8, 6)
	v, stats, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Entries) >= stats.Regions {
		t.Errorf("%d entries for %d regions: no skipping happened", len(v.Entries), stats.Regions)
	}
	vAll, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{KeepEmptyRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(vAll.Entries) != stats.Regions {
		t.Errorf("KeepEmptyRegions kept %d of %d", len(vAll.Entries), stats.Regions)
	}
	if vAll.Size() <= v.Size() {
		t.Error("keeping empty regions should cost bits")
	}
	// Both must decode identically.
	a, _ := v.Decode()
	b, _ := vAll.Decode()
	if !a.Equal(b) {
		t.Error("empty entries changed the decoded configuration")
	}
}

// TestFallbackGuarantee: with fallback disabled, encoding may fail;
// with it enabled, encoding must always succeed and verify. Exercised
// across many seeds as a randomized property.
func TestFallbackGuarantee(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		f := runFlow(t, seed, 35, 7, 9, 6)
		v, stats, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = stats
		decoded, err := v.Decode()
		if err != nil {
			t.Fatalf("seed %d decode: %v", seed, err)
		}
		if err := bitstream.Verify(decoded, f.d, f.pl, f.gr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	f := runFlow(t, 11, 30, 7, 8, 6)
	v, stats, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Regions != v.RegionsW()*v.RegionsH() {
		t.Errorf("Regions = %d, want %d", stats.Regions, v.RegionsW()*v.RegionsH())
	}
	raws := 0
	conns := 0
	for i := range v.Entries {
		if v.Entries[i].Raw {
			raws++
		}
		conns += len(v.Entries[i].Conns)
	}
	if raws != stats.RawRegions {
		t.Errorf("RawRegions = %d, counted %d", stats.RawRegions, raws)
	}
	if conns != stats.Connections {
		t.Errorf("Connections = %d, counted %d", stats.Connections, conns)
	}
	if stats.RawRegions != stats.CountFallbacks+stats.RouteFallbacks+
		stats.DeadEdgeFallbacks+stats.ConflictFallbacks {
		t.Errorf("fallback causes don't sum: %+v", stats)
	}
}

func TestEntrySizeAccounting(t *testing.T) {
	f := runFlow(t, 12, 20, 5, 8, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := v.HeaderSizeBits()
	for i := range v.Entries {
		e := &v.Entries[i]
		sz := v.EntrySizeBits(e)
		// Recompute by hand for cluster 1.
		want := 2*v.RegionCoordBits() + 1 + 1 + len(e.Logic)*v.P.NLB()
		if e.Raw {
			want += len(e.RawBits) * (v.P.NRaw() - v.P.NLB())
		} else {
			want += v.RouteCountBits() + len(e.Conns)*2*v.MBits()
		}
		if sz != want {
			t.Fatalf("entry %d size %d, want %d", i, sz, want)
		}
		total += sz
	}
	if total != v.Size() {
		t.Errorf("Size() = %d, sum = %d", v.Size(), total)
	}
}

func TestTableIFieldWidths(t *testing.T) {
	// Paper's worked example: W=5, K=6 -> M=5; W=20 -> M=7.
	v := &VBS{P: arch.PaperExample(), Cluster: 1, TaskW: 8, TaskH: 8}
	if v.MBits() != 5 {
		t.Errorf("M = %d, want 5", v.MBits())
	}
	if v.RouteCountBits() != bits.CeilLog2(10) {
		t.Errorf("route count bits = %d", v.RouteCountBits())
	}
	v20 := &VBS{P: arch.Default(), Cluster: 1, TaskW: 37, TaskH: 37}
	if v20.MBits() != 7 {
		t.Errorf("M(W=20) = %d, want 7", v20.MBits())
	}
	if v20.CoordBits() != 6 {
		t.Errorf("coord bits = %d, want 6 for size 37", v20.CoordBits())
	}
}

func TestValidateRejectsCorruptVBS(t *testing.T) {
	f := runFlow(t, 13, 15, 5, 8, 6)
	fresh := func() *VBS {
		v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cases := []func(*VBS){
		func(v *VBS) { v.Cluster = 0 },
		func(v *VBS) { v.TaskW = 0 },
		func(v *VBS) { v.Entries[0].X = -1 },
		func(v *VBS) { v.Entries[0], v.Entries[1] = v.Entries[1], v.Entries[0] },
		func(v *VBS) {
			v.Entries[0].Logic = append(v.Entries[0].Logic, LogicItem{Member: 0, Data: bits.NewVec(3)})
		},
		func(v *VBS) {
			v.Entries[0].Raw = true // raw without payload
		},
	}
	for i, corrupt := range cases {
		v := fresh()
		if len(v.Entries) < 2 {
			t.Fatal("need at least 2 entries for this test")
		}
		corrupt(v)
		if err := v.Validate(); err == nil {
			t.Errorf("corruption %d not detected", i)
		}
	}
}

func BenchmarkEncodeCluster1(b *testing.B) {
	f := runFlow(b, 14, 40, 8, 10, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{SkipVerify: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCluster1(b *testing.B) {
	f := runFlow(b, 15, 40, 8, 10, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCluster3(b *testing.B) {
	f := runFlow(b, 15, 40, 8, 10, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncodeBestPicksSmallest(t *testing.T) {
	f := runFlow(t, 50, 30, 7, 10, 6)
	best, stats, err := EncodeBest(f.d, f.pl, f.res, EncodeOptions{}, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("nil stats")
	}
	for _, c := range []int{1, 2, 3} {
		v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: c})
		if err != nil {
			t.Fatal(err)
		}
		if v.Size() < best.Size() {
			t.Errorf("cluster %d size %d beats EncodeBest's %d (cluster %d)",
				c, v.Size(), best.Size(), best.Cluster)
		}
	}
	// The winner still verifies.
	decoded, err := best.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if err := bitstream.Verify(decoded, f.d, f.pl, f.gr); err != nil {
		t.Fatal(err)
	}
}
