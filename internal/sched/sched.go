// Package sched is the placement decision layer of the run-time
// manager: given a task's footprint and a read-only view of the fabric
// pool, a Policy chooses which fabric to try first and which slot to
// commit to on that fabric.
//
// The package deliberately knows nothing about bitstreams, controllers
// or HTTP — policies see fabrics only through the small FabricStat and
// Slots views, so the same policy drives the controller's slot scan and
// the daemon's pool ordering. Admission itself (region overlap plus
// seam analysis) is the caller's job, surfaced to policies as
// Slots.CanPlace; crucially the caller evaluates it as a dry run
// against the candidate decode, so a policy may probe every position
// of a fragmented fabric without a single fabric write.
//
// Three policies ship with the runtime:
//
//   - first-fit: fabrics in index order, first admissible slot
//     row-major. The cheapest scan; the reference behaviour.
//   - best-fit: fullest fabric first, and within a fabric the
//     admissible slot with the fewest free macros bordering it
//     (tightest gap), so large free rectangles survive for large
//     tasks.
//   - emptiest: emptiest fabric first, first admissible slot — the
//     load-balancing default of the vbsd daemon.
package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Request describes the footprint of the task being placed, in macros.
type Request struct {
	W, H int
}

// Area returns the number of macros the task occupies.
func (r Request) Area() int { return r.W * r.H }

// FabricStat is the per-fabric summary a policy ranks the pool with.
type FabricStat struct {
	// Index identifies the fabric in the pool.
	Index int
	// Width and Height are the fabric dimensions in macros; every
	// policy ranks fabrics that cannot hold the request last.
	Width, Height int
	// FreeMacros is the current number of unowned macros.
	FreeMacros int
}

// Slots is the read-only view of one fabric a policy picks a slot
// through. Coordinates outside the fabric report Free == false, so
// fabric edges count as walls.
type Slots interface {
	// Dims returns the fabric dimensions in macros.
	Dims() (w, h int)
	// Task returns the footprint of the task being placed.
	Task() (w, h int)
	// Free reports whether macro (x, y) is inside the fabric and
	// unowned (macros owned by a task being relocated count as free).
	Free(x, y int) bool
	// CanPlace is the dry-run admission check: region overlap and seam
	// analysis of the candidate decode at (x, y), with no fabric
	// mutation.
	CanPlace(x, y int) bool
}

// Policy is a pluggable placement strategy.
type Policy interface {
	// Name returns the registry name of the policy.
	Name() string
	// RankFabrics orders the pool by placement preference for the
	// request; every index appears exactly once.
	RankFabrics(stats []FabricStat, req Request) []int
	// PickSlot selects a slot on one fabric, or ok == false when no
	// admissible position exists.
	PickSlot(s Slots) (x, y int, ok bool)
}

// scanFirst returns the first admissible position row-major.
func scanFirst(s Slots) (int, int, bool) {
	fw, fh := s.Dims()
	tw, th := s.Task()
	for y := 0; y+th <= fh; y++ {
		for x := 0; x+tw <= fw; x++ {
			if s.CanPlace(x, y) {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}

// rankFabrics orders fabric indices stably by less (nil keeps the
// given order), then partitions so fabrics whose dimensions cannot
// hold the request come last — they can only fail, so trying them
// first wastes placement scans.
func rankFabrics(stats []FabricStat, req Request, less func(a, b FabricStat) bool) []int {
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	if less != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return less(stats[order[a]], stats[order[b]])
		})
	}
	out := make([]int, 0, len(order))
	var tail []int
	for _, o := range order {
		if stats[o].Width >= req.W && stats[o].Height >= req.H {
			out = append(out, stats[o].Index)
		} else {
			tail = append(tail, stats[o].Index)
		}
	}
	return append(out, tail...)
}

type firstFit struct{}

// FirstFit returns the first-fit policy: fabrics in index order, first
// admissible slot row-major.
func FirstFit() Policy { return firstFit{} }

func (firstFit) Name() string { return "first-fit" }

func (firstFit) RankFabrics(stats []FabricStat, req Request) []int {
	return rankFabrics(stats, req, nil)
}

func (firstFit) PickSlot(s Slots) (int, int, bool) { return scanFirst(s) }

type emptiest struct{}

// Emptiest returns the load-balancing policy: emptiest fabric first,
// first admissible slot row-major. This is the daemon's default and
// matches its original pool behaviour.
func Emptiest() Policy { return emptiest{} }

func (emptiest) Name() string { return "emptiest" }

func (emptiest) RankFabrics(stats []FabricStat, req Request) []int {
	return rankFabrics(stats, req, func(a, b FabricStat) bool { return a.FreeMacros > b.FreeMacros })
}

func (emptiest) PickSlot(s Slots) (int, int, bool) { return scanFirst(s) }

type bestFit struct{}

// BestFit returns the packing policy: fullest fabric first (tightest
// pool fit), and within a fabric the admissible slot bordered by the
// fewest free macros, so tasks pack against walls and each other and
// large free rectangles survive.
func BestFit() Policy { return bestFit{} }

func (bestFit) Name() string { return "best-fit" }

func (bestFit) RankFabrics(stats []FabricStat, req Request) []int {
	return rankFabrics(stats, req, func(a, b FabricStat) bool { return a.FreeMacros < b.FreeMacros })
}

func (bestFit) PickSlot(s Slots) (int, int, bool) {
	fw, fh := s.Dims()
	tw, th := s.Task()
	bestX, bestY, bestGap := 0, 0, -1
	for y := 0; y+th <= fh; y++ {
		for x := 0; x+tw <= fw; x++ {
			if !s.CanPlace(x, y) {
				continue
			}
			gap := borderGap(s, x, y, tw, th)
			if bestGap < 0 || gap < bestGap {
				bestX, bestY, bestGap = x, y, gap
				if bestGap == 0 {
					// Gap 0 is the provable minimum: stop paying
					// admission checks for the rest of the fabric.
					return bestX, bestY, true
				}
			}
		}
	}
	return bestX, bestY, bestGap >= 0
}

// borderGap counts the free macros in the one-macro ring around the
// rect (corners included); out-of-fabric cells count as walls.
func borderGap(s Slots, x0, y0, w, h int) int {
	gap := 0
	for x := x0 - 1; x <= x0+w; x++ {
		if s.Free(x, y0-1) {
			gap++
		}
		if s.Free(x, y0+h) {
			gap++
		}
	}
	for y := y0; y < y0+h; y++ {
		if s.Free(x0-1, y) {
			gap++
		}
		if s.Free(x0+w, y) {
			gap++
		}
	}
	return gap
}

// registry is the single source of truth for policy names: Names and
// New both read it, so the two cannot drift.
var registry = []struct {
	name string
	make func() Policy
}{
	{"best-fit", BestFit},
	{"emptiest", Emptiest},
	{"first-fit", FirstFit},
}

// Default returns the policy used when none is configured.
func Default() Policy { return Emptiest() }

// Names lists the registered policy names.
func Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.name
	}
	return out
}

// New resolves a policy by name; the empty string selects Default.
func New(name string) (Policy, error) {
	if name == "" {
		return Default(), nil
	}
	for _, p := range registry {
		if p.name == name {
			return p.make(), nil
		}
	}
	return nil, fmt.Errorf("sched: unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
}
