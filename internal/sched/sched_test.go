package sched

import (
	"reflect"
	"testing"
)

// gridSlots is a fake fabric: '#' cells are occupied, '.' free. A
// placement is admissible when every covered cell is free (no seam
// model — sched never sees one anyway).
type gridSlots struct {
	rows   []string
	tw, th int
}

func (g *gridSlots) Dims() (int, int) { return len(g.rows[0]), len(g.rows) }
func (g *gridSlots) Task() (int, int) { return g.tw, g.th }

func (g *gridSlots) Free(x, y int) bool {
	if y < 0 || y >= len(g.rows) || x < 0 || x >= len(g.rows[0]) {
		return false
	}
	return g.rows[y][x] == '.'
}

func (g *gridSlots) CanPlace(x0, y0 int) bool {
	for y := y0; y < y0+g.th; y++ {
		for x := x0; x < x0+g.tw; x++ {
			if !g.Free(x, y) {
				return false
			}
		}
	}
	return true
}

func TestFirstFitPicksFirstRowMajor(t *testing.T) {
	s := &gridSlots{rows: []string{
		"##..",
		"....",
	}, tw: 2, th: 1}
	x, y, ok := FirstFit().PickSlot(s)
	if !ok || x != 2 || y != 0 {
		t.Fatalf("PickSlot = (%d,%d,%v), want (2,0,true)", x, y, ok)
	}
}

func TestPickSlotNoneFits(t *testing.T) {
	s := &gridSlots{rows: []string{"#.#"}, tw: 2, th: 1}
	for _, p := range []Policy{FirstFit(), Emptiest(), BestFit()} {
		if _, _, ok := p.PickSlot(s); ok {
			t.Errorf("%s: found a slot on a fabric with no 2-wide gap", p.Name())
		}
	}
}

// TestBestFitPrefersTightGap: a 1x1 task on a fabric with a snug
// pocket must land in the pocket, not in the open field first-fit
// would choose.
func TestBestFitPrefersTightGap(t *testing.T) {
	s := &gridSlots{rows: []string{
		".###",
		".#.#",
		".###",
		"....",
	}, tw: 1, th: 1}
	if x, y, ok := FirstFit().PickSlot(s); !ok || x != 0 || y != 0 {
		t.Fatalf("first-fit = (%d,%d,%v)", x, y, ok)
	}
	// (2,1) is the fully walled pocket: gap 0.
	x, y, ok := BestFit().PickSlot(s)
	if !ok {
		t.Fatal("best-fit found nothing")
	}
	if got := borderGap(s, x, y, 1, 1); got != 0 || !(x == 2 && y == 1) {
		t.Errorf("best-fit = (%d,%d) gap %d, want (2,1) gap 0", x, y, got)
	}
}

func TestRankFabrics(t *testing.T) {
	stats := []FabricStat{
		{Index: 0, Width: 4, Height: 4, FreeMacros: 10},
		{Index: 1, Width: 4, Height: 4, FreeMacros: 16},
		{Index: 2, Width: 4, Height: 4, FreeMacros: 3},
	}
	req := Request{W: 1, H: 1}
	if got := FirstFit().RankFabrics(stats, req); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("first-fit rank = %v", got)
	}
	if got := Emptiest().RankFabrics(stats, req); !reflect.DeepEqual(got, []int{1, 0, 2}) {
		t.Errorf("emptiest rank = %v", got)
	}
	if got := BestFit().RankFabrics(stats, req); !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Errorf("best-fit rank = %v", got)
	}
}

func TestRankFabricsStableOnTies(t *testing.T) {
	stats := []FabricStat{
		{Index: 0, Width: 4, Height: 4, FreeMacros: 8},
		{Index: 1, Width: 4, Height: 4, FreeMacros: 8},
	}
	for _, p := range []Policy{Emptiest(), BestFit()} {
		if got := p.RankFabrics(stats, Request{W: 1, H: 1}); !reflect.DeepEqual(got, []int{0, 1}) {
			t.Errorf("%s tie rank = %v, want [0 1]", p.Name(), got)
		}
	}
}

// TestRankFabricsTooSmallLast: a fabric whose dimensions cannot hold
// the request can only fail, so every policy ranks it last even when
// its occupancy would otherwise put it first.
func TestRankFabricsTooSmallLast(t *testing.T) {
	stats := []FabricStat{
		{Index: 0, Width: 2, Height: 2, FreeMacros: 4}, // emptiest but too small
		{Index: 1, Width: 4, Height: 4, FreeMacros: 1},
	}
	req := Request{W: 3, H: 3}
	for _, p := range []Policy{FirstFit(), Emptiest(), BestFit()} {
		if got := p.RankFabrics(stats, req); !reflect.DeepEqual(got, []int{1, 0}) {
			t.Errorf("%s rank = %v, want [1 0]", p.Name(), got)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := New(""); err != nil || p.Name() != Default().Name() {
		t.Errorf("New(\"\") = %v, %v", p, err)
	}
	if _, err := New("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}
