package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldWidth(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {28, 5}, {40, 6}, {88, 7}, {256, 8}, {257, 9},
	}
	for _, c := range cases {
		if got := FieldWidth(c.n); got != c.want {
			t.Errorf("FieldWidth(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCeilLog2MatchesPaperExamples(t *testing.T) {
	// Paper, Section II-B: W=5, L=7 gives M = ceil(log2(4W+L+1)) = 5.
	if got := CeilLog2(4*5 + 7 + 1); got != 5 {
		t.Errorf("M for W=5,L=7 = %d, want 5", got)
	}
	// At the normalized W=20 the code space is 88 values -> 7 bits.
	if got := CeilLog2(4*20 + 7 + 1); got != 7 {
		t.Errorf("M for W=20,L=7 = %d, want 7", got)
	}
}

func TestWriterSingleBits(t *testing.T) {
	var w Writer
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %v, want %v", i, got, want)
		}
	}
}

func TestWriteUintRoundTrip(t *testing.T) {
	var w Writer
	values := []struct {
		v     uint64
		width int
	}{
		{0, 0}, {1, 1}, {0, 1}, {5, 3}, {284, 9}, {1023, 10}, {1, 64},
		{0xdeadbeef, 32}, {1<<63 - 1, 63},
	}
	for _, c := range values {
		w.WriteUint(c.v, c.width)
	}
	r := NewReader(w.Bytes())
	for _, c := range values {
		got, err := r.ReadUint(c.width)
		if err != nil {
			t.Fatalf("ReadUint(%d): %v", c.width, err)
		}
		if got != c.v {
			t.Errorf("round-trip %d-bit value = %d, want %d", c.width, got, c.v)
		}
	}
}

func TestWriteUintOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on field overflow")
		}
	}()
	var w Writer
	w.WriteUint(8, 3)
}

func TestWriteUintBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid width")
		}
	}()
	var w Writer
	w.WriteUint(0, 65)
}

func TestReaderOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadUint(8); err != nil {
		t.Fatalf("ReadUint(8): %v", err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Errorf("ReadBit past end: err = %v, want ErrOutOfBits", err)
	}
	if _, err := r.ReadUint(1); err != ErrOutOfBits {
		t.Errorf("ReadUint past end: err = %v, want ErrOutOfBits", err)
	}
	if _, err := r.ReadVec(1); err != ErrOutOfBits {
		t.Errorf("ReadVec past end: err = %v, want ErrOutOfBits", err)
	}
}

func TestReaderBadWidth(t *testing.T) {
	r := NewReader(make([]byte, 16))
	if _, err := r.ReadUint(65); err == nil {
		t.Error("ReadUint(65) should fail")
	}
	if _, err := r.ReadUint(-1); err == nil {
		t.Error("ReadUint(-1) should fail")
	}
}

func TestAlign(t *testing.T) {
	var w Writer
	w.WriteUint(3, 3)
	w.Align()
	if w.Len() != 8 {
		t.Fatalf("Len after align = %d, want 8", w.Len())
	}
	w.WriteUint(0xab, 8)
	r := NewReader(w.Bytes())
	if _, err := r.ReadUint(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	got, err := r.ReadUint(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xab {
		t.Errorf("post-align byte = %#x, want 0xab", got)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteUint(0xffff, 16)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteUint(5, 4)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadUint(4); v != 5 {
		t.Errorf("after reset read %d, want 5", v)
	}
}

func TestVecBasics(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i, true)
	}
	if v.OnesCount() != len(idx) {
		t.Errorf("OnesCount = %d, want %d", v.OnesCount(), len(idx))
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	v.Set(64, false)
	if v.Get(64) {
		t.Error("bit 64 should be cleared")
	}
	if v.OnesCount() != len(idx)-1 {
		t.Errorf("OnesCount after clear = %d", v.OnesCount())
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := NewVec(10)
	v.Set(3, true)
	c := v.Clone()
	if !c.Equal(v) {
		t.Fatal("clone not equal")
	}
	c.Set(4, true)
	if v.Get(4) {
		t.Error("mutation of clone leaked into original")
	}
	if v.Equal(c) {
		t.Error("Equal should detect difference")
	}
}

func TestVecEqualLengthMismatch(t *testing.T) {
	a, b := NewVec(5), NewVec(6)
	if a.Equal(b) {
		t.Error("vectors of different length must not be equal")
	}
	if a.Equal(nil) {
		t.Error("nil comparison must be false")
	}
}

func TestVecOr(t *testing.T) {
	a, b := NewVec(70), NewVec(70)
	a.Set(0, true)
	b.Set(69, true)
	a.Or(b)
	if !a.Get(0) || !a.Get(69) {
		t.Error("Or lost bits")
	}
	if b.Get(0) {
		t.Error("Or mutated operand")
	}
}

func TestVecOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVec(3).Or(NewVec(4))
}

func TestVecClear(t *testing.T) {
	v := NewVec(100)
	for i := 0; i < 100; i += 7 {
		v.Set(i, true)
	}
	v.Clear()
	if v.OnesCount() != 0 {
		t.Error("Clear left bits set")
	}
}

func TestVecString(t *testing.T) {
	v := NewVec(4)
	v.Set(1, true)
	v.Set(3, true)
	if s := v.String(); s != "0101" {
		t.Errorf("String = %q, want 0101", s)
	}
}

func TestVecOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVec(4).Get(4)
}

func TestWriteVecRoundTrip(t *testing.T) {
	v := NewVec(19)
	for i := 0; i < 19; i += 3 {
		v.Set(i, true)
	}
	var w Writer
	w.WriteVec(v)
	if w.Len() != 19 {
		t.Fatalf("Len = %d", w.Len())
	}
	r := NewReader(w.Bytes())
	got, err := r.ReadVec(19)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Errorf("ReadVec = %s, want %s", got, v)
	}
}

// Property: any sequence of (value, width) fields round-trips through
// Writer/Reader exactly.
func TestQuickFieldSequenceRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		widths := make([]int, count)
		vals := make([]uint64, count)
		var w Writer
		for i := range widths {
			widths[i] = rng.Intn(64) + 1
			vals[i] = rng.Uint64() >> uint(64-widths[i])
			w.WriteUint(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range widths {
			got, err := r.ReadUint(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a Vec round-trips through WriteVec/ReadVec for any size and
// random contents.
func TestQuickVecRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n % 600)
		v := NewVec(size)
		for i := 0; i < size; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		var w Writer
		w.WriteVec(v)
		got, err := NewReader(w.Bytes()).ReadVec(size)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: OnesCount equals a naive per-bit count.
func TestQuickOnesCount(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%500) + 1
		v := NewVec(size)
		naive := 0
		for i := 0; i < size; i++ {
			b := rng.Intn(3) == 0
			v.Set(i, b)
			if b {
				naive++
			}
		}
		return v.OnesCount() == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriterUint(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<16 {
			w.Reset()
		}
		w.WriteUint(uint64(i)&0x7f, 7)
	}
}

func BenchmarkVecSetGet(b *testing.B) {
	v := NewVec(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Set(i%1024, i&1 == 0)
		_ = v.Get((i * 7) % 1024)
	}
}

// TestOrAtMatchesBitLoop checks the word-level merge against the
// obvious per-bit reference for aligned and unaligned offsets,
// including offsets that make source words straddle destination words.
func TestOrAtMatchesBitLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		dstLen := rng.Intn(400) + 1
		srcLen := rng.Intn(dstLen + 1)
		off := 0
		if dstLen > srcLen {
			off = rng.Intn(dstLen - srcLen + 1)
		}
		dst := NewVec(dstLen)
		src := NewVec(srcLen)
		for i := 0; i < dstLen; i++ {
			dst.Set(i, rng.Intn(2) == 0)
		}
		for i := 0; i < srcLen; i++ {
			src.Set(i, rng.Intn(2) == 0)
		}
		want := dst.Clone()
		for i := 0; i < srcLen; i++ {
			if src.Get(i) {
				want.Set(off+i, true)
			}
		}
		dst.OrAt(src, off)
		if !dst.Equal(want) {
			t.Fatalf("trial %d: OrAt(len %d, off %d) into len %d differs", trial, srcLen, off, dstLen)
		}
	}
}

func TestOrAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OrAt past the end should panic")
		}
	}()
	NewVec(64).OrAt(NewVec(10), 60)
}
