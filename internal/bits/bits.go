// Package bits provides bit-granular writers, readers and bit-vector
// utilities used by the raw bitstream and Virtual Bit-Stream formats.
//
// All multi-bit fields are written most-significant-bit first, matching
// the field layout of Table I in the paper, so that a field of width n
// holding value v occupies the next n bits with v's high bit first.
package bits

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrOutOfBits is returned by Reader methods when the underlying buffer
// has fewer bits remaining than requested.
var ErrOutOfBits = errors.New("bits: read past end of stream")

// FieldWidth returns the number of bits needed to represent values in
// [0, n-1], i.e. ceil(log2(n)). By convention FieldWidth(0) and
// FieldWidth(1) are both 0: a field with a single possible value needs
// no bits.
func FieldWidth(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// CeilLog2 returns ceil(log2(n)) for n >= 1, the form used by the
// paper's Table I field-size expressions. CeilLog2(1) == 0.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Writer accumulates bits MSB-first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the packed bytes. The final byte is zero-padded in its
// low-order bits. The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteUint appends the width low-order bits of v, MSB first.
// It panics if width is negative, exceeds 64, or v does not fit,
// since any of those indicates a field-sizing bug in the caller.
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bits: invalid field width %d", width))
	}
	if width < 64 && v>>uint(width) != 0 {
		panic(fmt.Sprintf("bits: value %d overflows %d-bit field", v, width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// WriteBool appends a single-bit flag.
func (w *Writer) WriteBool(b bool) { w.WriteBit(b) }

// WriteVec appends every bit of v (v.Len() bits).
func (w *Writer) WriteVec(v *Vec) {
	for i := 0; i < v.n; i++ {
		w.WriteBit(v.Get(i))
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	for w.nbit%8 != 0 {
		w.WriteBit(false)
	}
}

// Reader consumes bits MSB-first from a byte buffer.
type Reader struct {
	buf  []byte
	pos  int // next bit index
	nbit int // total bits available
}

// NewReader returns a Reader over buf. All len(buf)*8 bits are readable.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf, nbit: len(buf) * 8}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Pos returns the index of the next bit to be read.
func (r *Reader) Pos() int { return r.pos }

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrOutOfBits
	}
	b := r.buf[r.pos/8]>>(7-uint(r.pos%8))&1 == 1
	r.pos++
	return b, nil
}

// ReadUint consumes width bits and returns them as an unsigned value.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bits: invalid field width %d", width)
	}
	if r.Remaining() < width {
		return 0, ErrOutOfBits
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, _ := r.ReadBit()
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// ReadBool consumes a single-bit flag.
func (r *Reader) ReadBool() (bool, error) { return r.ReadBit() }

// ReadVec consumes n bits into a fresh Vec.
func (r *Reader) ReadVec(n int) (*Vec, error) {
	if r.Remaining() < n {
		return nil, ErrOutOfBits
	}
	v := NewVec(n)
	for i := 0; i < n; i++ {
		b, _ := r.ReadBit()
		v.Set(i, b)
	}
	return v, nil
}

// Align skips forward to the next byte boundary.
func (r *Reader) Align() {
	for r.pos%8 != 0 && r.pos < r.nbit {
		r.pos++
	}
}

// Vec is a fixed-length bit vector. Bit 0 is the first configuration
// bit in canonical order.
type Vec struct {
	words []uint64
	n     int
}

// NewVec returns an all-zero vector of n bits.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("bits: negative Vec length")
	}
	return &Vec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// Get reports the value of bit i.
func (v *Vec) Get(i int) bool {
	v.check(i)
	return v.words[i/64]>>(uint(i)%64)&1 == 1
}

// Set assigns bit i.
func (v *Vec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		v.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: index %d out of range [0,%d)", i, v.n))
	}
}

// OnesCount returns the number of set bits.
func (v *Vec) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (v *Vec) Clone() *Vec {
	c := NewVec(v.n)
	copy(c.words, v.words)
	return c
}

// Equal reports whether two vectors have identical length and contents.
func (v *Vec) Equal(o *Vec) bool {
	if o == nil || v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Or sets v to v|o. Both vectors must have the same length.
func (v *Vec) Or(o *Vec) {
	if v.n != o.n {
		panic("bits: Or on vectors of different length")
	}
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// OrAt ORs every bit of src into v starting at bit offset off:
// v[off+i] |= src[i] for i in [0, src.Len()). The merge runs word at a
// time (shifting when off is not word-aligned), relying on the Vec
// invariant that bits beyond Len() in the last word are zero — every
// constructor and mutator in this package preserves it. This is the
// decode hot path's merge primitive: routed switch words, logic
// payloads and raw fallbacks are OR-ed straight into the target
// configuration without any per-bit loop.
func (v *Vec) OrAt(src *Vec, off int) {
	if off < 0 || off+src.n > v.n {
		panic(fmt.Sprintf("bits: OrAt range [%d,%d) outside [0,%d)", off, off+src.n, v.n))
	}
	if src.n == 0 {
		return
	}
	w, sh := off/64, uint(off%64)
	if sh == 0 {
		for i, sw := range src.words {
			v.words[w+i] |= sw
		}
		return
	}
	for i, sw := range src.words {
		v.words[w+i] |= sw << sh
		// High part spills into the next word; it is zero at the vector
		// end because src's spare bits are zero.
		if hi := sw >> (64 - sh); hi != 0 {
			v.words[w+i+1] |= hi
		}
	}
}

// Clear zeroes every bit.
func (v *Vec) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// String renders the vector as a 0/1 string, bit 0 first. Intended for
// small vectors in tests and debug output.
func (v *Vec) String() string {
	b := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
