// Package unionfind provides a plain disjoint-set structure with path
// compression and union by size, used for electrical connectivity
// extraction from switch configurations.
package unionfind

// UF is a disjoint-set forest over the integers [0, n).
type UF struct {
	parent []int32
	size   []int32
}

// New returns n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets of a and b and reports whether they were
// previously distinct.
func (u *UF) Union(a, b int) bool {
	ra, rb := int32(u.Find(a)), int32(u.Find(b))
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// Same reports whether a and b are in one set.
func (u *UF) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// SetSize returns the size of x's set.
func (u *UF) SetSize(x int) int { return int(u.size[u.Find(x)]) }
