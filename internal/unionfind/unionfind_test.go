package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	u := New(10)
	if u.Len() != 10 {
		t.Fatalf("Len = %d", u.Len())
	}
	for i := 0; i < 10; i++ {
		if u.Find(i) != i {
			t.Errorf("singleton %d has root %d", i, u.Find(i))
		}
		if u.SetSize(i) != 1 {
			t.Errorf("singleton size %d", u.SetSize(i))
		}
	}
	if !u.Union(1, 2) {
		t.Error("first union should merge")
	}
	if u.Union(1, 2) {
		t.Error("second union should be a no-op")
	}
	if !u.Same(1, 2) || u.Same(1, 3) {
		t.Error("Same wrong")
	}
	u.Union(2, 3)
	if !u.Same(1, 3) {
		t.Error("transitivity lost")
	}
	if u.SetSize(1) != 3 {
		t.Errorf("set size = %d, want 3", u.SetSize(1))
	}
}

// Property: union-find agrees with a naive component labelling under
// random union sequences.
func TestQuickAgainstNaive(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%40) + 2
		rng := rand.New(rand.NewSource(seed))
		u := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for op := 0; op < 3*n; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			u.Union(a, b)
			relabel(label[a], label[b])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if u.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := New(1024)
		for j := 0; j < 1023; j++ {
			u.Union(j, j+1)
		}
		if u.SetSize(0) != 1024 {
			b.Fatal("bad size")
		}
	}
}
