// Package mcnc carries the benchmark set of the paper's Table II: the
// 20 largest MCNC circuits, with their published grid sizes, minimum
// channel widths and logic-block counts, plus calibrated synthetic
// generation (package gen) standing in for the original netlists,
// which are not redistributable. I/O counts follow the MCNC suite,
// scaled down where the one-pad-per-perimeter-macro floorplan cannot
// hold them (documented in DESIGN.md; pad count has negligible effect
// on routing density and therefore on compression).
package mcnc

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// Profile is one Table II row plus generation calibration.
type Profile struct {
	// Name is the MCNC circuit name.
	Name string
	// Size is the logic grid side from Table II.
	Size int
	// MCW is the paper's reported minimum channel width.
	MCW int
	// LBs is the paper's logic block count.
	LBs int
	// Inputs, Outputs are the MCNC primary I/O counts (pre-scaling).
	Inputs, Outputs int
	// Seq marks sequential circuits (latches present).
	Seq bool
}

// Profiles lists Table II in the paper's order.
var Profiles = []Profile{
	{Name: "alu4", Size: 35, MCW: 9, LBs: 1173, Inputs: 14, Outputs: 8},
	{Name: "apex2", Size: 39, MCW: 12, LBs: 1478, Inputs: 38, Outputs: 3},
	{Name: "apex4", Size: 32, MCW: 15, LBs: 970, Inputs: 9, Outputs: 19},
	{Name: "bigkey", Size: 27, MCW: 8, LBs: 683, Inputs: 229, Outputs: 197, Seq: true},
	{Name: "clma", Size: 79, MCW: 15, LBs: 6226, Inputs: 62, Outputs: 82, Seq: true},
	{Name: "des", Size: 32, MCW: 8, LBs: 554, Inputs: 256, Outputs: 245},
	{Name: "diffeq", Size: 30, MCW: 10, LBs: 869, Inputs: 64, Outputs: 39, Seq: true},
	{Name: "dsip", Size: 27, MCW: 9, LBs: 680, Inputs: 229, Outputs: 197, Seq: true},
	{Name: "elliptic", Size: 47, MCW: 13, LBs: 2134, Inputs: 131, Outputs: 114, Seq: true},
	{Name: "ex1010", Size: 56, MCW: 16, LBs: 3093, Inputs: 10, Outputs: 10},
	{Name: "ex5p", Size: 28, MCW: 13, LBs: 740, Inputs: 8, Outputs: 63},
	{Name: "frisc", Size: 55, MCW: 16, LBs: 2940, Inputs: 20, Outputs: 116, Seq: true},
	{Name: "misex3", Size: 35, MCW: 11, LBs: 1158, Inputs: 14, Outputs: 14},
	{Name: "pdc", Size: 61, MCW: 15, LBs: 3629, Inputs: 16, Outputs: 40},
	{Name: "s298", Size: 37, MCW: 8, LBs: 1301, Inputs: 4, Outputs: 6, Seq: true},
	{Name: "s38417", Size: 58, MCW: 8, LBs: 3333, Inputs: 29, Outputs: 106, Seq: true},
	{Name: "s38584.1", Size: 65, MCW: 9, LBs: 4219, Inputs: 38, Outputs: 304, Seq: true},
	{Name: "seq", Size: 37, MCW: 12, LBs: 1325, Inputs: 41, Outputs: 35},
	{Name: "spla", Size: 55, MCW: 14, LBs: 3005, Inputs: 16, Outputs: 46},
	{Name: "tseng", Size: 29, MCW: 8, LBs: 799, Inputs: 52, Outputs: 122, Seq: true},
}

// ByName returns the profile for an MCNC circuit name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("mcnc: unknown benchmark %q", name)
}

// Grid returns the fabric for this benchmark: the Size×Size logic
// region plus the I/O ring.
func (p Profile) Grid() arch.Grid { return arch.GridForSize(p.Size) }

// ScaledIO returns the pad counts after scaling to the perimeter
// capacity of the grid (one pad per ring macro, with a small margin).
func (p Profile) ScaledIO() (in, out int) {
	in, out = p.Inputs, p.Outputs
	capacity := p.Grid().NumPerimeter() - 8
	total := in + out
	if total > capacity {
		in = in * capacity / total
		out = out * capacity / total
		if in < 1 {
			in = 1
		}
		if out < 1 {
			out = 1
		}
	}
	return in, out
}

// Scale returns a copy of the profile shrunk by factor f (>= 1): LB
// count divided by f², grid side by f. Used for quick experiment modes
// where full Table II sizes would take too long.
func (p Profile) Scale(f int) Profile {
	if f <= 1 {
		return p
	}
	s := p
	s.Name = fmt.Sprintf("%s/%d", p.Name, f)
	s.LBs = p.LBs / (f * f)
	if s.LBs < 16 {
		s.LBs = 16
	}
	s.Size = isqrtCeil(s.LBs)
	if p.Size/f > s.Size {
		s.Size = p.Size / f
	}
	s.Inputs = maxInt(2, p.Inputs/f)
	s.Outputs = maxInt(2, p.Outputs/f)
	return s
}

// GenParams returns the calibrated generator parameters for this
// profile at LUT size k.
func (p Profile) GenParams(k int) gen.Params {
	in, out := p.ScaledIO()
	reg := 0.0
	if p.Seq {
		reg = 0.3
	}
	return gen.Params{
		Name:    p.Name,
		Seed:    seedFor(p.Name),
		LBs:     p.LBs,
		Inputs:  in,
		Outputs: out,
		K:       k,
		// Calibration: packed 6-LUT MCNC circuits average ~4 used
		// inputs per LUT; the locality/window pair is tuned so minimum
		// channel widths land in Table II's 8-16 band on this
		// architecture.
		AvgFanin: 4.0,
		Locality: 0.85,
		Window:   64,
		RegFrac:  reg,
	}
}

// Design generates the synthetic twin of this benchmark.
func (p Profile) Design(k int) (*netlist.Design, error) {
	return gen.Generate(p.GenParams(k))
}

// seedFor derives a stable per-benchmark seed from the name.
func seedFor(name string) int64 {
	h := int64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

func isqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
