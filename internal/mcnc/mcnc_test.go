package mcnc

import (
	"testing"
)

// TestTable2Values pins the profile table to the paper's Table II.
func TestTable2Values(t *testing.T) {
	if len(Profiles) != 20 {
		t.Fatalf("%d profiles, want 20", len(Profiles))
	}
	checks := map[string][3]int{ // size, mcw, lbs
		"alu4":     {35, 9, 1173},
		"clma":     {79, 15, 6226},
		"des":      {32, 8, 554},
		"ex1010":   {56, 16, 3093},
		"s38584.1": {65, 9, 4219},
		"tseng":    {29, 8, 799},
	}
	for name, want := range checks {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Size != want[0] || p.MCW != want[1] || p.LBs != want[2] {
			t.Errorf("%s: (%d,%d,%d), want %v", name, p.Size, p.MCW, p.LBs, want)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestGridFitsBlocks: every profile's logic fits the interior of its
// grid and pads fit the ring after scaling.
func TestGridFitsBlocks(t *testing.T) {
	for _, p := range Profiles {
		g := p.Grid()
		interior := (g.Width - 2) * (g.Height - 2)
		if p.LBs > interior {
			t.Errorf("%s: %d LBs exceed %d interior cells", p.Name, p.LBs, interior)
		}
		in, out := p.ScaledIO()
		if in+out > g.NumPerimeter() {
			t.Errorf("%s: %d pads exceed %d ring cells", p.Name, in+out, g.NumPerimeter())
		}
		if in < 1 || out < 1 {
			t.Errorf("%s: scaled I/O degenerate (%d,%d)", p.Name, in, out)
		}
	}
}

// TestSizeMatchesSqrtRule: Table II sizes are ceil(sqrt(LBs)) except
// for I/O-limited des.
func TestSizeMatchesSqrtRule(t *testing.T) {
	for _, p := range Profiles {
		want := isqrtCeil(p.LBs)
		if p.Name == "des" {
			if p.Size <= want {
				t.Errorf("des should be I/O-limited: size %d vs sqrt %d", p.Size, want)
			}
			continue
		}
		if p.Size != want {
			t.Errorf("%s: size %d, ceil(sqrt(%d)) = %d", p.Name, p.Size, p.LBs, want)
		}
	}
}

func TestDesignGeneration(t *testing.T) {
	p, err := ByName("des")
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Design(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumLogicBlocks() != p.LBs {
		t.Errorf("LBs = %d, want %d", d.NumLogicBlocks(), p.LBs)
	}
}

func TestDesignDeterministic(t *testing.T) {
	p, _ := ByName("ex5p")
	a, err := p.Design(6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Design(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nets) != len(b.Nets) {
		t.Fatal("regeneration differs")
	}
	for i := range a.Nets {
		if len(a.Nets[i].Sinks) != len(b.Nets[i].Sinks) {
			t.Fatalf("net %d fanout differs", i)
		}
	}
}

func TestScale(t *testing.T) {
	p, _ := ByName("clma")
	s := p.Scale(4)
	if s.LBs != 6226/16 {
		t.Errorf("scaled LBs = %d", s.LBs)
	}
	if s.Size < isqrtCeil(s.LBs) {
		t.Errorf("scaled size %d cannot hold %d LBs", s.Size, s.LBs)
	}
	g := s.Grid()
	in, out := s.ScaledIO()
	if in+out > g.NumPerimeter() {
		t.Error("scaled I/O does not fit")
	}
	if p.Scale(1).Name != p.Name {
		t.Error("Scale(1) should be identity")
	}
	// Scaled profile must generate a valid design.
	d, err := s.Design(6)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLogicBlocks() != s.LBs {
		t.Errorf("scaled design LBs = %d, want %d", d.NumLogicBlocks(), s.LBs)
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, p := range Profiles {
		s := seedFor(p.Name)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %s and %s", prev, p.Name)
		}
		seen[s] = p.Name
	}
}
