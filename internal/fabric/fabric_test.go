package fabric

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

func newFabric(t *testing.T) *Fabric {
	t.Helper()
	f, err := New(arch.PaperExample(), arch.Grid{Width: 8, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(arch.Params{}, arch.Grid{Width: 2, Height: 2}); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := New(arch.PaperExample(), arch.Grid{}); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestAllocateReleaseCycle(t *testing.T) {
	f := newFabric(t)
	if f.FreeMacros() != 64 {
		t.Fatalf("FreeMacros = %d", f.FreeMacros())
	}
	if err := f.Allocate(1, 1, 1, 3, 3); err != nil {
		t.Fatal(err)
	}
	if f.FreeMacros() != 64-9 {
		t.Errorf("FreeMacros = %d after alloc", f.FreeMacros())
	}
	if f.OwnerAt(2, 2) != 1 || f.OwnerAt(0, 0) != NoTask {
		t.Error("ownership wrong")
	}
	// Overlap rejected.
	if err := f.Allocate(2, 3, 3, 2, 2); err == nil {
		t.Error("overlapping allocation accepted")
	}
	// Disjoint fine.
	if err := f.Allocate(2, 4, 4, 2, 2); err != nil {
		t.Fatal(err)
	}
	if n := f.Release(1); n != 9 {
		t.Errorf("released %d macros, want 9", n)
	}
	if f.OwnerAt(2, 2) != NoTask {
		t.Error("release did not clear ownership")
	}
}

func TestReleaseClearsConfiguration(t *testing.T) {
	f := newFabric(t)
	if err := f.Allocate(1, 0, 0, 2, 2); err != nil {
		t.Fatal(err)
	}
	f.Config().At(1, 1).SetSwitch(0, true)
	f.Release(1)
	if f.Config().At(1, 1).Vec().OnesCount() != 0 {
		t.Error("release left configuration bits")
	}
}

func TestAllocateBounds(t *testing.T) {
	f := newFabric(t)
	cases := [][4]int{{-1, 0, 2, 2}, {0, -1, 2, 2}, {7, 0, 2, 2}, {0, 7, 1, 2}, {0, 0, 0, 1}, {0, 0, 9, 1}}
	for _, c := range cases {
		if err := f.Allocate(1, c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("rect %v accepted", c)
		}
	}
	if err := f.Allocate(NoTask, 0, 0, 1, 1); err == nil {
		t.Error("NoTask id accepted")
	}
}

func TestFindSlot(t *testing.T) {
	f := newFabric(t)
	x, y, ok := f.FindSlot(3, 3)
	if !ok || x != 0 || y != 0 {
		t.Fatalf("first slot = (%d,%d,%v)", x, y, ok)
	}
	if err := f.Allocate(1, 0, 0, 8, 4); err != nil {
		t.Fatal(err)
	}
	x, y, ok = f.FindSlot(3, 3)
	if !ok || y != 4 {
		t.Errorf("slot after blocking rows = (%d,%d,%v)", x, y, ok)
	}
	if _, _, ok = f.FindSlot(9, 1); ok {
		t.Error("oversized slot found")
	}
	if err := f.Allocate(2, 0, 4, 8, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, ok = f.FindSlot(1, 1); ok {
		t.Error("slot found on full fabric")
	}
}

// TestSeamConflicts: two abutting tasks driving the same boundary wire
// must be reported; independent wires must not.
func TestSeamConflicts(t *testing.T) {
	f := newFabric(t)
	p := f.Params()
	if err := f.Allocate(1, 0, 0, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Allocate(2, 2, 0, 2, 2); err != nil {
		t.Fatal(err)
	}
	// Task 1's east column macro (1,0): drive HW(3) via the SB pair
	// (InS, HW)... use pin junction instead to avoid needing InS.
	cfgA := f.Config().At(1, 0)
	swA := p.SwitchBetween(p.CondPin(1), p.CondHW(3))
	cfgA.SetSwitch(swA, true)
	// No conflict yet: task 2 does not touch its InW(3).
	if cs := f.SeamConflicts(0, 0, 2, 2); len(cs) != 0 {
		t.Fatalf("unexpected conflicts: %v", cs)
	}
	// Task 2's west column macro (2,0): connect InW(3) to its HW(3).
	cfgB := f.Config().At(2, 0)
	swB := p.SwitchBetween(p.CondInW(3), p.CondHW(3))
	cfgB.SetSwitch(swB, true)
	cs := f.SeamConflicts(0, 0, 2, 2)
	if len(cs) != 1 {
		t.Fatalf("conflicts = %v, want 1", cs)
	}
	if !strings.Contains(cs[0], "tasks 1 and 2") {
		t.Errorf("conflict message %q", cs[0])
	}
	// The same check seen from task 2's rectangle (west seam).
	cs = f.SeamConflicts(2, 0, 2, 2)
	if len(cs) != 1 {
		t.Errorf("west seam conflicts = %v", cs)
	}
}

func TestSeamNoConflictSameTask(t *testing.T) {
	f := newFabric(t)
	p := f.Params()
	if err := f.Allocate(1, 0, 0, 4, 2); err != nil {
		t.Fatal(err)
	}
	// Wire used across an internal boundary of one task: no conflict.
	f.Config().At(1, 0).SetSwitch(p.SwitchBetween(p.CondPin(1), p.CondHW(3)), true)
	f.Config().At(2, 0).SetSwitch(p.SwitchBetween(p.CondInW(3), p.CondHW(3)), true)
	if cs := f.SeamConflicts(0, 0, 2, 2); len(cs) != 0 {
		t.Errorf("conflicts within one task: %v", cs)
	}
}

func TestSeamVertical(t *testing.T) {
	f := newFabric(t)
	p := f.Params()
	if err := f.Allocate(1, 0, 0, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Allocate(2, 0, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
	// Task 1 drives VW(4) of macro (0,1); task 2 connects InS(4) at (0,2).
	f.Config().At(0, 1).SetSwitch(p.SwitchBetween(p.CondPin(5), p.CondVW(4)), true)
	f.Config().At(0, 2).SetSwitch(p.SwitchBetween(p.CondInS(4), p.CondVW(4)), true)
	if cs := f.SeamConflicts(0, 0, 2, 2); len(cs) != 1 {
		t.Errorf("north seam conflicts = %v", cs)
	}
	if cs := f.SeamConflicts(0, 2, 2, 2); len(cs) != 1 {
		t.Errorf("south seam conflicts = %v", cs)
	}
}

func TestOccupancyHelpers(t *testing.T) {
	f := newFabric(t)
	if f.UsedMacros() != 0 || f.Occupancy() != 0 {
		t.Fatal("blank fabric reports ownership")
	}
	if err := f.Allocate(3, 0, 0, 4, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Allocate(1, 4, 4, 2, 2); err != nil {
		t.Fatal(err)
	}
	if got := f.UsedMacros(); got != 12 {
		t.Errorf("UsedMacros = %d", got)
	}
	if got := f.Occupancy(); got != 12.0/64.0 {
		t.Errorf("Occupancy = %v", got)
	}
	f.Release(3)
	if got := f.UsedMacros(); got != 4 {
		t.Errorf("UsedMacros after release = %d", got)
	}
}

func TestCheckRect(t *testing.T) {
	f := newFabric(t)
	if err := f.Allocate(1, 2, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckRect(0, 0, 2, 2, NoTask); err != nil {
		t.Errorf("free rect rejected: %v", err)
	}
	if err := f.CheckRect(1, 1, 2, 2, NoTask); err == nil {
		t.Error("overlapping rect accepted")
	}
	// The overlap is with task 1 itself: admissible for a relocation.
	if err := f.CheckRect(1, 1, 2, 2, 1); err != nil {
		t.Errorf("self-overlapping rect rejected: %v", err)
	}
	if err := f.CheckRect(7, 7, 2, 2, NoTask); err == nil {
		t.Error("out-of-bounds rect accepted")
	}
	// CheckRect must not mutate ownership.
	if f.UsedMacros() != 4 {
		t.Errorf("UsedMacros = %d after queries", f.UsedMacros())
	}
}

// TestCandidateSeamConflictsMatchesLive: the dry-run seam analysis
// must agree with SeamConflicts after actually writing the candidate.
func TestCandidateSeamConflictsMatchesLive(t *testing.T) {
	p := arch.PaperExample()
	// Neighbour task 1 drives HW(3) of its east column macro (1,0).
	mkNeighbour := func(f *Fabric) {
		if err := f.Allocate(1, 0, 0, 2, 2); err != nil {
			t.Fatal(err)
		}
		f.Config().At(1, 0).SetSwitch(p.SwitchBetween(p.CondPin(1), p.CondHW(3)), true)
	}
	// Candidate 2x2 task whose west column macro taps InW(3): conflicts
	// when placed directly east of the neighbour.
	conflicting := arch.NewMacroConfig(p)
	conflicting.SetSwitch(p.SwitchBetween(p.CondInW(3), p.CondHW(3)), true)
	quiet := arch.NewMacroConfig(p)
	cfgAt := func(dx, dy int) *arch.MacroConfig {
		if dx == 0 && dy == 0 {
			return conflicting
		}
		return quiet
	}

	for _, tc := range []struct {
		name         string
		x0, y0       int
		wantConflict bool
	}{
		{"abutting east", 2, 0, true},
		{"one column away", 3, 0, false},
		{"far corner", 4, 4, false},
	} {
		// Dry-run verdict on a fresh fabric.
		fDry, err := New(p, arch.Grid{Width: 8, Height: 8})
		if err != nil {
			t.Fatal(err)
		}
		mkNeighbour(fDry)
		ownersBefore := fDry.UsedMacros()
		dry := fDry.CandidateSeamConflicts(2, tc.x0, tc.y0, 2, 2, cfgAt)
		if fDry.UsedMacros() != ownersBefore {
			t.Fatalf("%s: dry run mutated ownership", tc.name)
		}

		// Live verdict: allocate, write the same configs, analyze.
		fLive, err := New(p, arch.Grid{Width: 8, Height: 8})
		if err != nil {
			t.Fatal(err)
		}
		mkNeighbour(fLive)
		if err := fLive.Allocate(2, tc.x0, tc.y0, 2, 2); err != nil {
			t.Fatal(err)
		}
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				fLive.Config().At(tc.x0+dx, tc.y0+dy).Vec().Or(cfgAt(dx, dy).Vec())
			}
		}
		live := fLive.SeamConflicts(tc.x0, tc.y0, 2, 2)

		if (len(dry) > 0) != tc.wantConflict || len(dry) != len(live) {
			t.Errorf("%s: dry = %v, live = %v, wantConflict = %v",
				tc.name, dry, live, tc.wantConflict)
		}
	}
}

// TestCandidateSeamConflictsSkipsSelf: for a relocation, seams against
// the task's own soon-to-be-released region must not count.
func TestCandidateSeamConflictsSkipsSelf(t *testing.T) {
	p := arch.PaperExample()
	f, err := New(p, arch.Grid{Width: 8, Height: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 at (2,0) drives its east HW(0) and taps InW(0): moving it
	// one macro west overlaps nothing but abuts its own stale region.
	if err := f.Allocate(1, 2, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	f.Config().At(2, 0).SetSwitch(p.SwitchBetween(p.CondPin(1), p.CondHW(0)), true)
	f.Config().At(2, 0).SetSwitch(p.SwitchBetween(p.CondInW(0), p.CondHW(0)), true)
	cfg := f.Config().At(2, 0).Clone()
	cfgAt := func(dx, dy int) *arch.MacroConfig { return cfg }
	if cs := f.CandidateSeamConflicts(1, 1, 0, 1, 1, cfgAt); len(cs) != 0 {
		t.Errorf("self seam reported for relocation: %v", cs)
	}
	// The same candidate from a different task would conflict.
	if cs := f.CandidateSeamConflicts(2, 1, 0, 1, 1, cfgAt); len(cs) == 0 {
		t.Error("real seam conflict missed")
	}
}
