// Package fabric simulates the reconfigurable fabric's configuration
// layer: the memory plane that raw bitstreams are written into, with
// rectangular region accounting for dynamic partial reconfiguration
// (which tasks own which macros) and seam analysis for wires shared
// across task boundaries.
package fabric

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bitstream"
)

// TaskID identifies a loaded hardware task.
type TaskID int

// NoTask marks unowned fabric.
const NoTask TaskID = -1

// Fabric is one reconfigurable device.
type Fabric struct {
	p     arch.Params
	g     arch.Grid
	raw   *bitstream.Raw
	owner []TaskID
}

// New returns a blank fabric.
func New(p arch.Params, g arch.Grid) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{p: p, g: g, raw: bitstream.New(p, g), owner: make([]TaskID, g.NumMacros())}
	for i := range f.owner {
		f.owner[i] = NoTask
	}
	return f, nil
}

// Params returns the fabric's architecture.
func (f *Fabric) Params() arch.Params { return f.p }

// Grid returns the fabric's dimensions.
func (f *Fabric) Grid() arch.Grid { return f.g }

// Config exposes the live configuration plane. Mutating it directly
// bypasses ownership accounting; loaders should use Allocate first.
func (f *Fabric) Config() *bitstream.Raw { return f.raw }

// OwnerAt returns the task owning macro (x, y).
func (f *Fabric) OwnerAt(x, y int) TaskID {
	if !f.g.Contains(x, y) {
		return NoTask
	}
	return f.owner[f.g.Index(x, y)]
}

// rectCheck validates a rectangle against the grid.
func (f *Fabric) rectCheck(x0, y0, w, h int) error {
	if w < 1 || h < 1 || x0 < 0 || y0 < 0 || x0+w > f.g.Width || y0+h > f.g.Height {
		return fmt.Errorf("fabric: rect %dx%d at (%d,%d) outside %dx%d fabric",
			w, h, x0, y0, f.g.Width, f.g.Height)
	}
	return nil
}

// Allocate reserves a free rectangle for a task.
func (f *Fabric) Allocate(id TaskID, x0, y0, w, h int) error {
	if id < 0 {
		return fmt.Errorf("fabric: invalid task id %d", id)
	}
	if err := f.rectCheck(x0, y0, w, h); err != nil {
		return err
	}
	for x := x0; x < x0+w; x++ {
		for y := y0; y < y0+h; y++ {
			if o := f.owner[f.g.Index(x, y)]; o != NoTask {
				return fmt.Errorf("fabric: macro (%d,%d) owned by task %d", x, y, o)
			}
		}
	}
	for x := x0; x < x0+w; x++ {
		for y := y0; y < y0+h; y++ {
			f.owner[f.g.Index(x, y)] = id
		}
	}
	return nil
}

// Release clears ownership and configuration of every macro owned by
// the task and returns how many macros were freed.
func (f *Fabric) Release(id TaskID) int {
	n := 0
	for i, o := range f.owner {
		if o != id {
			continue
		}
		f.owner[i] = NoTask
		f.raw.Configs[i].Vec().Clear()
		n++
	}
	return n
}

// CheckRect reports whether a task could claim the rectangle: it must
// lie inside the grid and every macro must be unowned. Macros owned by
// except are treated as free (pass the relocating task's id, or NoTask
// for a fresh load), so a task may be admitted into space overlapping
// its own current region. Nothing is mutated; this is the overlap half
// of dry-run admission.
func (f *Fabric) CheckRect(x0, y0, w, h int, except TaskID) error {
	if err := f.rectCheck(x0, y0, w, h); err != nil {
		return err
	}
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			if o := f.owner[f.g.Index(x, y)]; o != NoTask && o != except {
				return fmt.Errorf("fabric: macro (%d,%d) owned by task %d", x, y, o)
			}
		}
	}
	return nil
}

// FitsRect is CheckRect as an allocation-free predicate, for placement
// scans that probe many positions.
func (f *Fabric) FitsRect(x0, y0, w, h int, except TaskID) bool {
	if w < 1 || h < 1 || x0 < 0 || y0 < 0 || x0+w > f.g.Width || y0+h > f.g.Height {
		return false
	}
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			if o := f.owner[f.g.Index(x, y)]; o != NoTask && o != except {
				return false
			}
		}
	}
	return true
}

// FindSlot scans row-major for the first free w×h rectangle, returning
// its origin or ok=false.
func (f *Fabric) FindSlot(w, h int) (x0, y0 int, ok bool) {
	if w > f.g.Width || h > f.g.Height {
		return 0, 0, false
	}
	for y := 0; y+h <= f.g.Height; y++ {
		for x := 0; x+w <= f.g.Width; x++ {
			if f.rectFree(x, y, w, h) {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}

func (f *Fabric) rectFree(x0, y0, w, h int) bool {
	for x := x0; x < x0+w; x++ {
		for y := y0; y < y0+h; y++ {
			if f.owner[f.g.Index(x, y)] != NoTask {
				return false
			}
		}
	}
	return true
}

// FreeMacros returns the number of unowned macros.
func (f *Fabric) FreeMacros() int {
	n := 0
	for _, o := range f.owner {
		if o == NoTask {
			n++
		}
	}
	return n
}

// UsedMacros returns the number of task-owned macros.
func (f *Fabric) UsedMacros() int { return f.g.NumMacros() - f.FreeMacros() }

// Occupancy returns the owned fraction of the fabric in [0, 1] — the
// figure a runtime manager balances placement decisions on.
func (f *Fabric) Occupancy() float64 {
	return float64(f.UsedMacros()) / float64(f.g.NumMacros())
}

// condUsed reports whether the configuration of macro (x, y) has any
// on switch touching local conductor c.
func (f *Fabric) condUsed(x, y int, c arch.Cond) bool {
	return f.condUsedIn(f.raw.At(x, y), c)
}

// condUsedIn reports whether cfg has any on switch touching local
// conductor c.
func (f *Fabric) condUsedIn(cfg *arch.MacroConfig, c arch.Cond) bool {
	for _, nb := range f.p.Adjacency(c) {
		if cfg.SwitchOn(nb.Switch) {
			return true
		}
	}
	return false
}

// SeamConflicts inspects the wires crossing the rectangle's boundary
// and returns a description of each wire driven from both sides by
// different owners. Channel wires physically extend one macro past a
// task edge, so two abutting tasks can contend for the same wire; the
// runtime manager calls this after writing a task's configuration.
func (f *Fabric) SeamConflicts(x0, y0, w, h int) []string {
	var out []string
	id := func(x, y int) TaskID { return f.OwnerAt(x, y) }
	// East seam: wires HW(x0+w-1, y, t) reach into column x0+w.
	for y := y0; y < y0+h; y++ {
		for t := 0; t < f.p.W; t++ {
			f.seamCheck(&out, x0+w-1, y, f.p.CondHW(t), x0+w, y, f.p.CondInW(t), id)
		}
	}
	// West seam: wires HW(x0-1, y, t) reach into column x0.
	for y := y0; y < y0+h; y++ {
		for t := 0; t < f.p.W; t++ {
			f.seamCheck(&out, x0, y, f.p.CondInW(t), x0-1, y, f.p.CondHW(t), id)
		}
	}
	// North seam.
	for x := x0; x < x0+w; x++ {
		for t := 0; t < f.p.W; t++ {
			f.seamCheck(&out, x, y0+h-1, f.p.CondVW(t), x, y0+h, f.p.CondInS(t), id)
		}
	}
	// South seam.
	for x := x0; x < x0+w; x++ {
		for t := 0; t < f.p.W; t++ {
			f.seamCheck(&out, x, y0, f.p.CondInS(t), x, y0-1, f.p.CondVW(t), id)
		}
	}
	return out
}

// CandidateSeamConflicts runs the seam analysis of SeamConflicts for a
// hypothetical placement, without writing anything into the fabric:
// the task `as` occupies rectangle (x0, y0, w, h) with the per-macro
// configurations returned by cfgAt (rectangle-relative coordinates;
// nil means all-off). Macros outside the rectangle are read from the
// live configuration, except that macros owned by `as` are skipped —
// for a relocation they would be released (and cleared) before the
// candidate is written, and for a fresh load `as` is a new id nothing
// else owns. The result equals what SeamConflicts would report after
// Allocate-and-write at the same position, which is what makes
// dry-run admission sound.
func (f *Fabric) CandidateSeamConflicts(as TaskID, x0, y0, w, h int, cfgAt func(dx, dy int) *arch.MacroConfig) []string {
	var out []string
	f.scanCandidateSeams(as, x0, y0, w, h, cfgAt, func(ax, ay int, ac arch.Cond, idb TaskID) bool {
		out = append(out, fmt.Sprintf(
			"wire %s of macro (%d,%d) contended by tasks %d and %d",
			f.p.CondName(ac), ax, ay, as, idb))
		return false
	})
	return out
}

// HasCandidateSeamConflict reports whether CandidateSeamConflicts
// would be non-empty, stopping at the first contended wire and
// allocating nothing — the admission predicate placement scans probe
// hundreds of positions with.
func (f *Fabric) HasCandidateSeamConflict(as TaskID, x0, y0, w, h int, cfgAt func(dx, dy int) *arch.MacroConfig) bool {
	found := false
	f.scanCandidateSeams(as, x0, y0, w, h, cfgAt, func(int, int, arch.Cond, TaskID) bool {
		found = true
		return true
	})
	return found
}

// scanCandidateSeams walks the four seams of the hypothetical
// placement and calls emit for every contended wire; emit returning
// true stops the scan.
func (f *Fabric) scanCandidateSeams(as TaskID, x0, y0, w, h int, cfgAt func(dx, dy int) *arch.MacroConfig, emit func(ax, ay int, ac arch.Cond, idb TaskID) bool) {
	check := func(ax, ay int, ac arch.Cond, bx, by int, bc arch.Cond) bool {
		if !f.g.Contains(ax, ay) || !f.g.Contains(bx, by) {
			return false
		}
		idb := f.OwnerAt(bx, by)
		if idb == as {
			return false
		}
		cfg := cfgAt(ax-x0, ay-y0)
		if cfg == nil {
			return false
		}
		if f.condUsedIn(cfg, ac) && f.condUsed(bx, by, bc) {
			return emit(ax, ay, ac, idb)
		}
		return false
	}
	// Same four seams as SeamConflicts; the inside endpoint always
	// reads the candidate configuration.
	for y := y0; y < y0+h; y++ {
		for t := 0; t < f.p.W; t++ {
			if check(x0+w-1, y, f.p.CondHW(t), x0+w, y, f.p.CondInW(t)) {
				return
			}
			if check(x0, y, f.p.CondInW(t), x0-1, y, f.p.CondHW(t)) {
				return
			}
		}
	}
	for x := x0; x < x0+w; x++ {
		for t := 0; t < f.p.W; t++ {
			if check(x, y0+h-1, f.p.CondVW(t), x, y0+h, f.p.CondInS(t)) {
				return
			}
			if check(x, y0, f.p.CondInS(t), x, y0-1, f.p.CondVW(t)) {
				return
			}
		}
	}
}

func (f *Fabric) seamCheck(out *[]string, ax, ay int, ac arch.Cond, bx, by int, bc arch.Cond, id func(int, int) TaskID) {
	if !f.g.Contains(ax, ay) || !f.g.Contains(bx, by) {
		return
	}
	ida, idb := id(ax, ay), id(bx, by)
	if ida == idb {
		return
	}
	if f.condUsed(ax, ay, ac) && f.condUsed(bx, by, bc) {
		*out = append(*out, fmt.Sprintf(
			"wire %s of macro (%d,%d) contended by tasks %d and %d",
			f.p.CondName(ac), ax, ay, ida, idb))
	}
}
