package arch

import "fmt"

// Grid is a rectangular fabric of macros, Width columns by Height rows.
// Column x grows east, row y grows north, matching wire directions.
//
// Following the VPR floorplan the paper's Table II sizes refer to, a
// "size n" benchmark occupies an n×n logic-block region surrounded by a
// one-macro perimeter ring holding the I/O pads, for a total grid of
// (n+2)×(n+2) macros.
type Grid struct {
	Width, Height int
}

// GridForSize returns the grid for a Table II "Size" value: the n×n
// logic region plus the I/O ring.
func GridForSize(n int) Grid { return Grid{Width: n + 2, Height: n + 2} }

// Validate reports whether the grid has positive dimensions.
func (g Grid) Validate() error {
	if g.Width < 1 || g.Height < 1 {
		return fmt.Errorf("arch: grid %dx%d invalid", g.Width, g.Height)
	}
	return nil
}

// NumMacros returns Width*Height.
func (g Grid) NumMacros() int { return g.Width * g.Height }

// Contains reports whether (x, y) lies on the grid.
func (g Grid) Contains(x, y int) bool {
	return x >= 0 && x < g.Width && y >= 0 && y < g.Height
}

// IsPerimeter reports whether (x, y) is on the outermost ring, where
// I/O pads live.
func (g Grid) IsPerimeter(x, y int) bool {
	return g.Contains(x, y) &&
		(x == 0 || y == 0 || x == g.Width-1 || y == g.Height-1)
}

// NumPerimeter returns the number of perimeter cells.
func (g Grid) NumPerimeter() int {
	if g.Width == 1 || g.Height == 1 {
		return g.NumMacros()
	}
	return 2*g.Width + 2*g.Height - 4
}

// Index flattens (x, y) to a row-major index.
func (g Grid) Index(x, y int) int { return y*g.Width + x }

// Coords inverts Index.
func (g Grid) Coords(i int) (x, y int) { return i % g.Width, i / g.Width }
