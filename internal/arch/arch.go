// Package arch models the island-style FPGA architecture of the paper
// (Section II-A): a grid of macros, each containing one logic block
// (K-input LUT plus flip-flop), the adjacent horizontal (ChanX) and
// vertical (ChanY) routing channel segments, and one switch box.
//
// The package fixes the exact programmable-switch inventory of Eq. (1):
//
//	Nraw = NLB + 6*(NS + NC+) + 3*NCT
//
// with NLB = 2^K + 1, NS = W (one disjoint switch-box point per track,
// six pairwise switches each), NC+ = L*(W-1) cross-shaped pin junctions
// (six transistors each) and NCT = L T-shaped pin junctions (three
// transistors each). For the paper's example (K=6, W=5, L=7) this gives
// Nraw = 284 and a macro I/O code space of 4W+L+1 = 28 values coded on
// M = 5 bits, exactly as in Section II-B.
//
// # Geometry
//
// Macro (x, y) owns the following conductors:
//
//   - HW(t): its horizontal wire t, starting at switch box SB(x,y) and
//     running east to SB(x+1,y). Its far end is the macro's East
//     boundary I/O t, which is the same conductor as the West boundary
//     I/O t of macro (x+1, y).
//   - VW(t): its vertical wire t, running north to SB(x,y+1); its far
//     end is the North boundary I/O (= South I/O of macro (x, y+1)).
//   - PW(p): the wire of logic-block pin p. Pin 0 is the LB output,
//     pins 1..K are LUT inputs. Pins 0..ceil(L/2)-1 tap ChanX (the
//     horizontal wires), the rest tap ChanY.
//
// The switch box SB(x,y) joins, per track t, the four incident wires
// {HW(x-1,y,t), VW(x,y-1,t), HW(x,y,t), VW(x,y,t)} with six pairwise
// switches; the two incoming neighbours' wires appear inside macro
// (x,y) as the InW(t) and InS(t) conductors.
package arch

import (
	"fmt"

	"repro/internal/bits"
)

// Params describes one architecture instance. The zero value is not
// valid; use Validate (or New) before relying on derived quantities.
type Params struct {
	// W is the routing channel width (tracks per channel).
	W int
	// K is the LUT input count; the logic block holds one K-LUT and one
	// flip-flop, so it exposes L = K+1 pins.
	K int
}

// Default returns the architecture evaluated in the paper's experiments:
// 6-input LUTs and the normalized channel width of 20 tracks.
func Default() Params { return Params{W: 20, K: 6} }

// PaperExample returns the W=5 architecture of the worked example in
// Section II-B (Figure 1), with Nraw = 284 and M = 5.
func PaperExample() Params { return Params{W: 5, K: 6} }

// Validate reports whether the parameters describe a buildable fabric.
func (p Params) Validate() error {
	if p.W < 1 {
		return fmt.Errorf("arch: channel width W=%d, need >= 1", p.W)
	}
	if p.K < 1 || p.K > 16 {
		return fmt.Errorf("arch: LUT size K=%d, need 1..16", p.K)
	}
	return nil
}

// L returns the number of logic-block pins (K inputs + 1 output).
func (p Params) L() int { return p.K + 1 }

// NLB returns the size in bits of the logic-block configuration:
// 2^K LUT bits plus one flip-flop enable bit.
func (p Params) NLB() int { return 1<<uint(p.K) + 1 }

// NS returns the number of switch-box switch points (one per track).
func (p Params) NS() int { return p.W }

// NCross returns NC+, the number of cross-shaped (4-way) pin junctions.
func (p Params) NCross() int { return p.L() * (p.W - 1) }

// NTee returns NCT, the number of T-shaped (3-way) pin junctions.
func (p Params) NTee() int { return p.L() }

// NRaw returns the raw configuration size of one macro in bits,
// Eq. (1) of the paper.
func (p Params) NRaw() int {
	return p.NLB() + 6*(p.NS()+p.NCross()) + 3*p.NTee()
}

// NumIOCodes returns the size of the macro I/O code space,
// 4W + L + 1 (code 0 is the null endpoint).
func (p Params) NumIOCodes() int { return 4*p.W + p.L() + 1 }

// MBits returns M = ceil(log2(4W+L+1)), the width of one connection
// endpoint in the Virtual Bit-Stream.
func (p Params) MBits() int { return bits.CeilLog2(p.NumIOCodes()) }

// RouteCountBits returns ceil(log2(2W)), the width of the per-macro
// route-count field (Table I).
func (p Params) RouteCountBits() int { return bits.CeilLog2(2 * p.W) }

// MaxRoutes returns the largest route count representable in the
// route-count field; macros needing more fall back to raw coding.
func (p Params) MaxRoutes() int { return 1<<uint(p.RouteCountBits()) - 1 }

// BreakEven returns floor(Nraw / 2M): the number of coded connections at
// which the VBS coding of a macro stops being smaller than raw coding
// (28 for the W=5 example in Section II-B).
func (p Params) BreakEven() int { return p.NRaw() / (2 * p.MBits()) }

// PinsOnChanX returns how many of the L pins tap the horizontal channel;
// the remaining pins tap the vertical channel.
func (p Params) PinsOnChanX() int { return (p.L() + 1) / 2 }

// PinChannelIsX reports whether pin p taps ChanX (horizontal wires).
func (p Params) PinChannelIsX(pin int) bool { return pin < p.PinsOnChanX() }

// OutputPin returns the pin index of the logic-block output.
func (p Params) OutputPin() int { return 0 }

// InputPin returns the pin index of LUT input i (0-based).
func (p Params) InputPin(i int) int { return i + 1 }

// Side identifies one side of a macro (or cluster) boundary.
type Side int

// Boundary sides in canonical I/O numbering order.
const (
	West Side = iota
	South
	East
	North
)

var sideNames = [...]string{"W", "S", "E", "N"}

func (s Side) String() string {
	if s < West || s > North {
		return fmt.Sprintf("Side(%d)", int(s))
	}
	return sideNames[s]
}

// Opposite returns the facing side (West<->East, South<->North).
func (s Side) Opposite() Side {
	switch s {
	case West:
		return East
	case East:
		return West
	case South:
		return North
	default:
		return South
	}
}

// Cond identifies one electrical conductor inside a macro.
// The ordering is fixed and load-bearing (it defines deterministic
// tie-breaking in the de-virtualization router):
//
//	[0, W)        HW(t)   own horizontal wire t (East I/O t)
//	[W, 2W)       VW(t)   own vertical wire t   (North I/O t)
//	[2W, 3W)      InW(t)  west neighbour's horizontal wire t (West I/O t)
//	[3W, 4W)      InS(t)  south neighbour's vertical wire t  (South I/O t)
//	[4W, 4W+L)    PW(p)   logic-block pin wires
type Cond int

// CondNone marks the absence of a conductor.
const CondNone Cond = -1

// CondKind classifies a conductor.
type CondKind int

// Conductor kinds, in index order.
const (
	KindHW CondKind = iota
	KindVW
	KindInW
	KindInS
	KindPin
)

var kindNames = [...]string{"HW", "VW", "InW", "InS", "PW"}

func (k CondKind) String() string {
	if k < KindHW || k > KindPin {
		return fmt.Sprintf("CondKind(%d)", int(k))
	}
	return kindNames[k]
}

// NumConds returns the number of conductors per macro (4W + L).
func (p Params) NumConds() int { return 4*p.W + p.L() }

// CondHW returns the conductor of the macro's own horizontal wire t.
func (p Params) CondHW(t int) Cond { p.checkTrack(t); return Cond(t) }

// CondVW returns the conductor of the macro's own vertical wire t.
func (p Params) CondVW(t int) Cond { p.checkTrack(t); return Cond(p.W + t) }

// CondInW returns the conductor of the west neighbour's horizontal wire
// t as seen at this macro's switch box.
func (p Params) CondInW(t int) Cond { p.checkTrack(t); return Cond(2*p.W + t) }

// CondInS returns the conductor of the south neighbour's vertical wire t.
func (p Params) CondInS(t int) Cond { p.checkTrack(t); return Cond(3*p.W + t) }

// CondPin returns the conductor of logic-block pin wire p.
func (p Params) CondPin(pin int) Cond {
	if pin < 0 || pin >= p.L() {
		panic(fmt.Sprintf("arch: pin %d out of range [0,%d)", pin, p.L()))
	}
	return Cond(4*p.W + pin)
}

func (p Params) checkTrack(t int) {
	if t < 0 || t >= p.W {
		panic(fmt.Sprintf("arch: track %d out of range [0,%d)", t, p.W))
	}
}

// CondInfo decomposes a conductor into its kind and index (track for
// wires, pin number for pin wires).
func (p Params) CondInfo(c Cond) (CondKind, int) {
	i := int(c)
	switch {
	case i >= 0 && i < p.W:
		return KindHW, i
	case i < 2*p.W:
		return KindVW, i - p.W
	case i < 3*p.W:
		return KindInW, i - 2*p.W
	case i < 4*p.W:
		return KindInS, i - 3*p.W
	case i < 4*p.W+p.L():
		return KindPin, i - 4*p.W
	}
	panic(fmt.Sprintf("arch: conductor %d out of range", i))
}

// CondName renders a conductor for diagnostics, e.g. "HW3" or "PW0".
func (p Params) CondName(c Cond) string {
	if c == CondNone {
		return "none"
	}
	k, i := p.CondInfo(c)
	return fmt.Sprintf("%s%d", k, i)
}

// IOCode is a macro boundary I/O index as stored in the Virtual
// Bit-Stream: 0 is the null endpoint, then W tracks per side in the
// order West, South, East, North, then the L pins.
type IOCode int

// IONull is the null endpoint code.
const IONull IOCode = 0

// CodeForSide returns the I/O code of track t on the given side.
func (p Params) CodeForSide(s Side, t int) IOCode {
	p.checkTrack(t)
	return IOCode(int(s)*p.W + t + 1)
}

// CodeForPin returns the I/O code of logic-block pin `pin`.
func (p Params) CodeForPin(pin int) IOCode {
	if pin < 0 || pin >= p.L() {
		panic(fmt.Sprintf("arch: pin %d out of range", pin))
	}
	return IOCode(4*p.W + pin + 1)
}

// CondForCode maps an I/O code to the conductor that realizes it inside
// this macro. West/South boundary I/Os are the incoming neighbour wires
// (InW/InS); East/North I/Os are the macro's own wires whose far ends
// form the boundary. The null code maps to CondNone.
func (p Params) CondForCode(code IOCode) (Cond, error) {
	c := int(code)
	switch {
	case c == 0:
		return CondNone, nil
	case c < 0 || c >= p.NumIOCodes():
		return CondNone, fmt.Errorf("arch: I/O code %d out of range [0,%d)", c, p.NumIOCodes())
	case c <= p.W: // West
		return p.CondInW(c - 1), nil
	case c <= 2*p.W: // South
		return p.CondInS(c - p.W - 1), nil
	case c <= 3*p.W: // East
		return p.CondHW(c - 2*p.W - 1), nil
	case c <= 4*p.W: // North
		return p.CondVW(c - 3*p.W - 1), nil
	default: // pin
		return p.CondPin(c - 4*p.W - 1), nil
	}
}

// CodeForCond is the inverse of CondForCode.
func (p Params) CodeForCond(c Cond) IOCode {
	if c == CondNone {
		return IONull
	}
	k, i := p.CondInfo(c)
	switch k {
	case KindHW:
		return p.CodeForSide(East, i)
	case KindVW:
		return p.CodeForSide(North, i)
	case KindInW:
		return p.CodeForSide(West, i)
	case KindInS:
		return p.CodeForSide(South, i)
	default:
		return p.CodeForPin(i)
	}
}
