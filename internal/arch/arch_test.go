package arch

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
)

// TestEq1PaperExample pins the worked example of Section II-B:
// K=6, W=5, L=7 gives NLB=65, NC+=28, NCT=7, Nraw=284, M=5 and a
// break-even point of 28 connections.
func TestEq1PaperExample(t *testing.T) {
	p := PaperExample()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.L(); got != 7 {
		t.Errorf("L = %d, want 7", got)
	}
	if got := p.NLB(); got != 65 {
		t.Errorf("NLB = %d, want 65", got)
	}
	if got := p.NCross(); got != 28 {
		t.Errorf("NC+ = %d, want 28", got)
	}
	if got := p.NTee(); got != 7 {
		t.Errorf("NCT = %d, want 7", got)
	}
	if got := p.NS(); got != 5 {
		t.Errorf("NS = %d, want 5", got)
	}
	if got := p.NRaw(); got != 284 {
		t.Errorf("Nraw = %d, want 284", got)
	}
	if got := p.NumIOCodes(); got != 28 {
		t.Errorf("I/O codes = %d, want 28", got)
	}
	if got := p.MBits(); got != 5 {
		t.Errorf("M = %d, want 5", got)
	}
	if got := p.BreakEven(); got != 28 {
		t.Errorf("break-even = %d, want 28", got)
	}
}

// TestEq1Normalized pins the normalized W=20 architecture used for the
// paper's Figures 4 and 5.
func TestEq1Normalized(t *testing.T) {
	p := Default()
	if got := p.NRaw(); got != 1004 {
		t.Errorf("Nraw(W=20) = %d, want 1004", got)
	}
	if got := p.MBits(); got != 7 {
		t.Errorf("M(W=20) = %d, want 7", got)
	}
	if got := p.NumIOCodes(); got != 88 {
		t.Errorf("I/O codes = %d, want 88", got)
	}
}

// TestEq1ClosedForm checks Nraw = 44 + 48W for K=6 across widths.
func TestEq1ClosedForm(t *testing.T) {
	for w := 1; w <= 64; w++ {
		p := Params{W: w, K: 6}
		if got, want := p.NRaw(), 44+48*w; got != want {
			t.Errorf("Nraw(W=%d) = %d, want %d", w, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{{W: 0, K: 6}, {W: -1, K: 6}, {W: 5, K: 0}, {W: 5, K: 17}}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", p)
		}
	}
	if err := (Params{W: 1, K: 1}).Validate(); err != nil {
		t.Errorf("minimal params should validate: %v", err)
	}
}

func TestCondIndexing(t *testing.T) {
	p := PaperExample()
	if got := p.NumConds(); got != 27 {
		t.Fatalf("NumConds = %d, want 27", got)
	}
	cases := []struct {
		c    Cond
		kind CondKind
		idx  int
	}{
		{p.CondHW(0), KindHW, 0},
		{p.CondHW(4), KindHW, 4},
		{p.CondVW(0), KindVW, 0},
		{p.CondInW(3), KindInW, 3},
		{p.CondInS(2), KindInS, 2},
		{p.CondPin(0), KindPin, 0},
		{p.CondPin(6), KindPin, 6},
	}
	for _, c := range cases {
		k, i := p.CondInfo(c.c)
		if k != c.kind || i != c.idx {
			t.Errorf("CondInfo(%d) = (%v,%d), want (%v,%d)", c.c, k, i, c.kind, c.idx)
		}
	}
}

func TestCondNameAndSides(t *testing.T) {
	p := PaperExample()
	if got := p.CondName(p.CondPin(2)); got != "PW2" {
		t.Errorf("CondName = %q", got)
	}
	if got := p.CondName(CondNone); got != "none" {
		t.Errorf("CondName(none) = %q", got)
	}
	if West.Opposite() != East || East.Opposite() != West ||
		North.Opposite() != South || South.Opposite() != North {
		t.Error("Side.Opposite is wrong")
	}
	if West.String() != "W" || North.String() != "N" {
		t.Error("Side.String is wrong")
	}
}

// TestIOCodeRoundTrip checks that every non-null I/O code maps to a
// conductor and back.
func TestIOCodeRoundTrip(t *testing.T) {
	for _, p := range []Params{PaperExample(), Default(), {W: 2, K: 4}} {
		for code := 1; code < p.NumIOCodes(); code++ {
			c, err := p.CondForCode(IOCode(code))
			if err != nil {
				t.Fatalf("W=%d CondForCode(%d): %v", p.W, code, err)
			}
			if back := p.CodeForCond(c); back != IOCode(code) {
				t.Errorf("W=%d code %d -> cond %d -> code %d", p.W, code, c, back)
			}
		}
		// Null code.
		c, err := p.CondForCode(IONull)
		if err != nil || c != CondNone {
			t.Errorf("null code: (%d,%v)", c, err)
		}
		if p.CodeForCond(CondNone) != IONull {
			t.Error("CodeForCond(CondNone) != IONull")
		}
		// Out-of-range codes must error.
		if _, err := p.CondForCode(IOCode(p.NumIOCodes())); err == nil {
			t.Error("out-of-range code should fail")
		}
		if _, err := p.CondForCode(IOCode(-1)); err == nil {
			t.Error("negative code should fail")
		}
	}
}

// TestIOCodeSideSemantics pins the meaning of each side: West I/O t is
// the incoming neighbour wire InW(t), East I/O t is the macro's own
// HW(t), and so on.
func TestIOCodeSideSemantics(t *testing.T) {
	p := PaperExample()
	cases := []struct {
		code IOCode
		want Cond
	}{
		{p.CodeForSide(West, 2), p.CondInW(2)},
		{p.CodeForSide(South, 0), p.CondInS(0)},
		{p.CodeForSide(East, 4), p.CondHW(4)},
		{p.CodeForSide(North, 1), p.CondVW(1)},
		{p.CodeForPin(3), p.CondPin(3)},
	}
	for _, c := range cases {
		got, err := p.CondForCode(c.code)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("code %d -> %s, want %s", c.code, p.CondName(got), p.CondName(c.want))
		}
	}
}

// TestSwitchLayoutExact verifies the canonical raw layout: bit counts
// per switch kind and total coverage of [NLB, NRaw) with no gaps.
func TestSwitchLayoutExact(t *testing.T) {
	for _, p := range []Params{PaperExample(), Default(), {W: 2, K: 2}} {
		sws := p.Switches()
		wantCount := 6*p.W + p.L()*p.W // 6 pairs per track + one junction per pin per track
		if len(sws) != wantCount {
			t.Fatalf("W=%d: %d switches, want %d", p.W, len(sws), wantCount)
		}
		next := p.NLB()
		var nPair, nCross, nTee int
		for i, sw := range sws {
			if sw.FirstBit != next {
				t.Fatalf("W=%d switch %d starts at bit %d, want %d", p.W, i, sw.FirstBit, next)
			}
			next += sw.NumBits
			switch sw.Kind {
			case SwitchBoxPair:
				nPair++
				if sw.NumBits != 1 {
					t.Errorf("sb pair with %d bits", sw.NumBits)
				}
			case CrossJunction:
				nCross++
				if sw.NumBits != 6 {
					t.Errorf("cross junction with %d bits", sw.NumBits)
				}
			case TeeJunction:
				nTee++
				if sw.NumBits != 3 {
					t.Errorf("tee junction with %d bits", sw.NumBits)
				}
			}
			if sw.A >= sw.B {
				t.Errorf("switch %d not normalized: %d >= %d", i, sw.A, sw.B)
			}
		}
		if next != p.NRaw() {
			t.Errorf("W=%d layout ends at %d, want %d", p.W, next, p.NRaw())
		}
		if nPair != 6*p.W {
			t.Errorf("W=%d: %d sb pairs, want %d", p.W, nPair, 6*p.W)
		}
		if nCross != p.NCross() {
			t.Errorf("W=%d: %d cross, want %d", p.W, nCross, p.NCross())
		}
		if nTee != p.NTee() {
			t.Errorf("W=%d: %d tee, want %d", p.W, nTee, p.NTee())
		}
	}
}

// TestSwitchBoxPairsPerTrack checks that each track's switch point joins
// exactly the four incident wires pairwise.
func TestSwitchBoxPairsPerTrack(t *testing.T) {
	p := PaperExample()
	for tr := 0; tr < p.W; tr++ {
		ends := []Cond{p.CondInW(tr), p.CondInS(tr), p.CondHW(tr), p.CondVW(tr)}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if p.SwitchBetween(ends[i], ends[j]) < 0 {
					t.Errorf("track %d: no switch between %s and %s",
						tr, p.CondName(ends[i]), p.CondName(ends[j]))
				}
			}
		}
		// No cross-track switch-box connections (disjoint topology).
		if tr+1 < p.W {
			if p.SwitchBetween(p.CondInW(tr), p.CondHW(tr+1)) >= 0 {
				t.Errorf("track %d connects to track %d through switch box", tr, tr+1)
			}
		}
	}
}

// TestPinJunctions checks pin-to-channel assignment: ChanX pins reach
// every HW track, ChanY pins every VW track, and never the converse.
func TestPinJunctions(t *testing.T) {
	p := PaperExample()
	if got := p.PinsOnChanX(); got != 4 {
		t.Fatalf("PinsOnChanX = %d, want 4", got)
	}
	for pin := 0; pin < p.L(); pin++ {
		pw := p.CondPin(pin)
		for tr := 0; tr < p.W; tr++ {
			onX := p.SwitchBetween(pw, p.CondHW(tr)) >= 0
			onY := p.SwitchBetween(pw, p.CondVW(tr)) >= 0
			if p.PinChannelIsX(pin) && (!onX || onY) {
				t.Errorf("pin %d track %d: ChanX pin has onX=%v onY=%v", pin, tr, onX, onY)
			}
			if !p.PinChannelIsX(pin) && (onX || !onY) {
				t.Errorf("pin %d track %d: ChanY pin has onX=%v onY=%v", pin, tr, onX, onY)
			}
		}
	}
}

func TestAdjacencyConsistent(t *testing.T) {
	p := Default()
	sws := p.Switches()
	degree := make(map[Cond]int)
	for _, sw := range sws {
		degree[sw.A]++
		degree[sw.B]++
	}
	for c := 0; c < p.NumConds(); c++ {
		adj := p.Adjacency(Cond(c))
		if len(adj) != degree[Cond(c)] {
			t.Errorf("cond %s: adjacency %d, want %d", p.CondName(Cond(c)), len(adj), degree[Cond(c)])
		}
		for _, n := range adj {
			sw := sws[n.Switch]
			if sw.A != Cond(c) && sw.B != Cond(c) {
				t.Errorf("cond %d adjacency references foreign switch %d", c, n.Switch)
			}
			if n.Cond == Cond(c) {
				t.Errorf("cond %d has self-loop", c)
			}
		}
	}
}

func TestOutputAndInputPins(t *testing.T) {
	p := Default()
	if p.OutputPin() != 0 {
		t.Error("output pin should be 0")
	}
	for i := 0; i < p.K; i++ {
		if p.InputPin(i) != i+1 {
			t.Errorf("InputPin(%d) = %d", i, p.InputPin(i))
		}
	}
}

func TestMacroConfigLogic(t *testing.T) {
	p := PaperExample()
	m := NewMacroConfig(p)
	logic := bits.NewVec(p.NLB())
	logic.Set(0, true)
	logic.Set(63, true)
	logic.Set(64, true) // FF enable
	m.SetLogic(logic)
	got := m.Logic()
	if !got.Equal(logic) {
		t.Errorf("Logic round-trip failed: %s", got)
	}
	// Logic bits must land in [0, NLB) only.
	for i := p.NLB(); i < p.NRaw(); i++ {
		if m.Vec().Get(i) {
			t.Fatalf("logic write leaked into switch bit %d", i)
		}
	}
}

func TestMacroConfigSwitches(t *testing.T) {
	p := PaperExample()
	m := NewMacroConfig(p)
	for i, sw := range p.Switches() {
		if m.SwitchOn(i) {
			t.Fatalf("switch %d on in zero config", i)
		}
		m.SetSwitch(i, true)
		if !m.SwitchOn(i) {
			t.Fatalf("switch %d did not turn on", i)
		}
		// All the switch's raw bits must be driven.
		for b := 0; b < sw.NumBits; b++ {
			if !m.Vec().Get(sw.FirstBit + b) {
				t.Fatalf("switch %d bit %d not set", i, b)
			}
		}
		m.SetSwitch(i, false)
		if m.SwitchOn(i) {
			t.Fatalf("switch %d did not turn off", i)
		}
	}
	if m.Vec().OnesCount() != 0 {
		t.Error("config not clean after toggling all switches")
	}
}

func TestMacroConfigOnSwitches(t *testing.T) {
	p := PaperExample()
	m := NewMacroConfig(p)
	m.SetSwitch(3, true)
	m.SetSwitch(17, true)
	on := m.OnSwitches()
	if len(on) != 2 || on[0] != 3 || on[1] != 17 {
		t.Errorf("OnSwitches = %v, want [3 17]", on)
	}
}

func TestRoutingBitsRoundTrip(t *testing.T) {
	p := PaperExample()
	m := NewMacroConfig(p)
	m.SetSwitch(0, true)
	m.SetSwitch(10, true)
	payload := m.RoutingBits()
	if payload.Len() != p.NRaw()-p.NLB() {
		t.Fatalf("payload %d bits", payload.Len())
	}
	m2 := NewMacroConfig(p)
	m2.SetRoutingBits(payload)
	if !m2.Vec().Equal(m.Vec()) {
		t.Error("routing payload round-trip mismatch")
	}
}

func TestMacroConfigFromVec(t *testing.T) {
	p := PaperExample()
	if _, err := MacroConfigFromVec(p, bits.NewVec(p.NRaw()-1)); err == nil {
		t.Error("wrong-size vec should fail")
	}
	v := bits.NewVec(p.NRaw())
	m, err := MacroConfigFromVec(p, v)
	if err != nil {
		t.Fatal(err)
	}
	m.SetSwitch(0, true)
	if v.OnesCount() == 0 {
		t.Error("wrapper should alias the vector")
	}
}

// TestComponents checks electrical component extraction: turning on a
// path of switches merges exactly the conductors on the path.
func TestComponents(t *testing.T) {
	p := PaperExample()
	m := NewMacroConfig(p)
	// Connect InW(2) -SB-> HW(2) -junction-> PW0.
	s1 := p.SwitchBetween(p.CondInW(2), p.CondHW(2))
	s2 := p.SwitchBetween(p.CondPin(0), p.CondHW(2))
	if s1 < 0 || s2 < 0 {
		t.Fatal("expected switches not found")
	}
	m.SetSwitch(s1, true)
	m.SetSwitch(s2, true)
	comp := m.Components()
	if comp[p.CondInW(2)] != comp[p.CondHW(2)] || comp[p.CondHW(2)] != comp[p.CondPin(0)] {
		t.Error("path conductors not in one component")
	}
	if comp[p.CondInW(2)] == comp[p.CondInW(3)] {
		t.Error("unrelated conductors merged")
	}
	// Root must be the smallest member index.
	root := comp[p.CondPin(0)]
	min := p.CondHW(2)
	if root != min {
		t.Errorf("component root = %s, want %s", p.CondName(root), p.CondName(min))
	}
}

// Property: for random switch subsets, Components is a valid partition
// refinement: two conductors directly joined by an on switch always
// share a component.
func TestQuickComponentsRespectSwitches(t *testing.T) {
	p := Params{W: 4, K: 3}
	f := func(mask uint64) bool {
		m := NewMacroConfig(p)
		sws := p.Switches()
		for i := range sws {
			if mask>>(uint(i)%64)&1 == 1 && (i%3 != 0) {
				m.SetSwitch(i, true)
			}
		}
		comp := m.Components()
		for i, sw := range sws {
			if m.SwitchOn(i) && comp[sw.A] != comp[sw.B] {
				return false
			}
		}
		// Roots must be canonical (smallest index in component).
		for c, r := range comp {
			if int(r) > c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSwitchKindString(t *testing.T) {
	if SwitchBoxPair.String() != "sb" || CrossJunction.String() != "cross" || TeeJunction.String() != "tee" {
		t.Error("SwitchKind.String mismatch")
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := Params{W: 20, K: 6}
		g := p.buildGraph()
		if len(g.switches) == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkComponents(b *testing.B) {
	p := Default()
	m := NewMacroConfig(p)
	for i := 0; i < p.NumSwitches(); i += 5 {
		m.SetSwitch(i, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Components()
	}
}
