package arch

import "testing"

func TestGridForSize(t *testing.T) {
	g := GridForSize(35) // alu4 in Table II
	if g.Width != 37 || g.Height != 37 {
		t.Errorf("grid = %dx%d, want 37x37", g.Width, g.Height)
	}
	if g.NumMacros() != 37*37 {
		t.Errorf("NumMacros = %d", g.NumMacros())
	}
}

func TestGridValidate(t *testing.T) {
	if (Grid{0, 5}).Validate() == nil || (Grid{5, 0}).Validate() == nil {
		t.Error("degenerate grids should fail")
	}
	if (Grid{1, 1}).Validate() != nil {
		t.Error("1x1 grid should validate")
	}
}

func TestGridContainsAndPerimeter(t *testing.T) {
	g := Grid{4, 3}
	if !g.Contains(0, 0) || !g.Contains(3, 2) || g.Contains(4, 0) || g.Contains(0, 3) || g.Contains(-1, 0) {
		t.Error("Contains wrong")
	}
	perim := 0
	for x := 0; x < g.Width; x++ {
		for y := 0; y < g.Height; y++ {
			if g.IsPerimeter(x, y) {
				perim++
			}
		}
	}
	if perim != g.NumPerimeter() {
		t.Errorf("NumPerimeter = %d, counted %d", g.NumPerimeter(), perim)
	}
	if g.IsPerimeter(1, 1) || g.IsPerimeter(2, 1) {
		t.Error("interior cell marked perimeter")
	}
	if !g.IsPerimeter(0, 1) || !g.IsPerimeter(3, 1) || !g.IsPerimeter(1, 0) || !g.IsPerimeter(1, 2) {
		t.Error("edge cell not marked perimeter")
	}
}

func TestGridNumPerimeterDegenerate(t *testing.T) {
	if (Grid{1, 5}).NumPerimeter() != 5 {
		t.Error("1-wide grid perimeter wrong")
	}
	if (Grid{5, 1}).NumPerimeter() != 5 {
		t.Error("1-tall grid perimeter wrong")
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := Grid{7, 5}
	for x := 0; x < g.Width; x++ {
		for y := 0; y < g.Height; y++ {
			gx, gy := g.Coords(g.Index(x, y))
			if gx != x || gy != y {
				t.Fatalf("(%d,%d) -> %d -> (%d,%d)", x, y, g.Index(x, y), gx, gy)
			}
		}
	}
}
