package arch

import (
	"fmt"
	"sync"

	"repro/internal/bits"
)

// Switch describes one logical programmable switch of a macro: an
// electrical connection between two conductors, backed by one or more
// raw configuration bits.
//
// Switch-box pairwise switches occupy a single bit each (the six pairs
// of a switch point are individually programmable, e.g. a horizontal
// route on (InW,HW) and a vertical route on (InS,VW) may share a track).
// Pin junctions bundle the 6 (cross-shaped) or 3 (T-shaped) transistor
// bits of Eq. (1) into one logical on/off switch: when on, all bits of
// the junction are set; a junction reads as on when any bit is set.
type Switch struct {
	// A and B are the conductors joined when the switch is on; A < B.
	A, B Cond
	// FirstBit is the offset of the switch's first bit in the macro's
	// canonical raw layout.
	FirstBit int
	// NumBits is 1 for switch-box pairs, 6 for cross junctions and 3
	// for T junctions.
	NumBits int
	// Kind classifies the switch for diagnostics and statistics.
	Kind SwitchKind
}

// SwitchKind classifies programmable switches.
type SwitchKind int

// Switch kinds.
const (
	SwitchBoxPair SwitchKind = iota
	CrossJunction
	TeeJunction
)

func (k SwitchKind) String() string {
	switch k {
	case SwitchBoxPair:
		return "sb"
	case CrossJunction:
		return "cross"
	case TeeJunction:
		return "tee"
	default:
		return fmt.Sprintf("SwitchKind(%d)", int(k))
	}
}

// Neighbor is one adjacency entry of the macro conductor graph.
type Neighbor struct {
	// Switch indexes into Switches().
	Switch int
	// Cond is the conductor on the far side of the switch.
	Cond Cond
}

// graph caches the derived switch list and adjacency for a Params value.
type graph struct {
	switches []Switch
	adj      [][]Neighbor // indexed by Cond
}

var graphCache sync.Map // Params -> *graph

func (p Params) graph() *graph {
	if g, ok := graphCache.Load(p); ok {
		return g.(*graph)
	}
	g := p.buildGraph()
	actual, _ := graphCache.LoadOrStore(p, g)
	return actual.(*graph)
}

func (p Params) buildGraph() *graph {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &graph{adj: make([][]Neighbor, p.NumConds())}
	bit := p.NLB()

	addSwitch := func(a, b Cond, nbits int, kind SwitchKind) {
		if a > b {
			a, b = b, a
		}
		idx := len(g.switches)
		g.switches = append(g.switches, Switch{A: a, B: b, FirstBit: bit, NumBits: nbits, Kind: kind})
		g.adj[a] = append(g.adj[a], Neighbor{Switch: idx, Cond: b})
		g.adj[b] = append(g.adj[b], Neighbor{Switch: idx, Cond: a})
		bit += nbits
	}

	// Switch box: per track, six pairwise single-bit switches among the
	// four incident wires, in canonical pair order.
	for t := 0; t < p.W; t++ {
		ends := [4]Cond{p.CondInW(t), p.CondInS(t), p.CondHW(t), p.CondVW(t)}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				addSwitch(ends[i], ends[j], 1, SwitchBoxPair)
			}
		}
	}

	// Connection boxes: each pin wire crosses every track of its
	// channel; the last crossing is T-shaped (the pin wire ends there).
	for pin := 0; pin < p.L(); pin++ {
		pw := p.CondPin(pin)
		for t := 0; t < p.W; t++ {
			var wire Cond
			if p.PinChannelIsX(pin) {
				wire = p.CondHW(t)
			} else {
				wire = p.CondVW(t)
			}
			if t < p.W-1 {
				addSwitch(pw, wire, 6, CrossJunction)
			} else {
				addSwitch(pw, wire, 3, TeeJunction)
			}
		}
	}

	if bit != p.NRaw() {
		panic(fmt.Sprintf("arch: switch layout ends at bit %d, want NRaw=%d", bit, p.NRaw()))
	}
	return g
}

// Switches returns the canonical, cached switch enumeration of a macro.
// The returned slice must not be modified.
func (p Params) Switches() []Switch { return p.graph().switches }

// NumSwitches returns the number of logical switches per macro.
func (p Params) NumSwitches() int { return len(p.graph().switches) }

// Adjacency returns the conductors reachable from c through a single
// switch. The returned slice must not be modified.
func (p Params) Adjacency(c Cond) []Neighbor {
	if c < 0 || int(c) >= p.NumConds() {
		panic(fmt.Sprintf("arch: conductor %d out of range", c))
	}
	return p.graph().adj[c]
}

// SwitchBetween returns the index of the switch joining a and b, or -1
// if the two conductors are not directly connected.
func (p Params) SwitchBetween(a, b Cond) int {
	for _, n := range p.Adjacency(a) {
		if n.Cond == b {
			return n.Switch
		}
	}
	return -1
}

// MacroConfig is the raw configuration of one macro: NRaw bits in the
// canonical layout (logic data first, then switch bits).
type MacroConfig struct {
	p   Params
	vec *bits.Vec
}

// NewMacroConfig returns an all-zero (fully disconnected, LUT=0)
// configuration for the given architecture.
func NewMacroConfig(p Params) *MacroConfig {
	return &MacroConfig{p: p, vec: bits.NewVec(p.NRaw())}
}

// MacroConfigFromVec wraps an existing NRaw-bit vector. The vector is
// used directly, not copied.
func MacroConfigFromVec(p Params, v *bits.Vec) (*MacroConfig, error) {
	if v.Len() != p.NRaw() {
		return nil, fmt.Errorf("arch: config has %d bits, want NRaw=%d", v.Len(), p.NRaw())
	}
	return &MacroConfig{p: p, vec: v}, nil
}

// Params returns the architecture this configuration belongs to.
func (m *MacroConfig) Params() Params { return m.p }

// Vec exposes the underlying bit vector (canonical layout).
func (m *MacroConfig) Vec() *bits.Vec { return m.vec }

// Clone returns an independent copy.
func (m *MacroConfig) Clone() *MacroConfig {
	return &MacroConfig{p: m.p, vec: m.vec.Clone()}
}

// SetLogic stores the NLB logic bits (LUT truth table then FF enable).
func (m *MacroConfig) SetLogic(logic *bits.Vec) {
	if logic.Len() != m.p.NLB() {
		panic(fmt.Sprintf("arch: logic data has %d bits, want NLB=%d", logic.Len(), m.p.NLB()))
	}
	for i := 0; i < logic.Len(); i++ {
		m.vec.Set(i, logic.Get(i))
	}
}

// Logic extracts the NLB logic bits as a fresh vector.
func (m *MacroConfig) Logic() *bits.Vec {
	out := bits.NewVec(m.p.NLB())
	for i := 0; i < out.Len(); i++ {
		out.Set(i, m.vec.Get(i))
	}
	return out
}

// SetSwitch turns logical switch idx on or off, driving every raw bit
// of the switch.
func (m *MacroConfig) SetSwitch(idx int, on bool) {
	sw := m.p.Switches()[idx]
	for b := 0; b < sw.NumBits; b++ {
		m.vec.Set(sw.FirstBit+b, on)
	}
}

// SwitchOn reports whether logical switch idx is on (any of its bits
// set).
func (m *MacroConfig) SwitchOn(idx int) bool {
	sw := m.p.Switches()[idx]
	for b := 0; b < sw.NumBits; b++ {
		if m.vec.Get(sw.FirstBit + b) {
			return true
		}
	}
	return false
}

// OnSwitches returns the indices of all switches currently on, in
// canonical order.
func (m *MacroConfig) OnSwitches() []int {
	var on []int
	for i := range m.p.Switches() {
		if m.SwitchOn(i) {
			on = append(on, i)
		}
	}
	return on
}

// RoutingBits copies the routing portion of the configuration (bits
// NLB..NRaw) into a fresh vector of NRaw-NLB bits. This is the payload
// stored verbatim by the VBS raw-fallback coding.
func (m *MacroConfig) RoutingBits() *bits.Vec {
	n := m.p.NRaw() - m.p.NLB()
	out := bits.NewVec(n)
	for i := 0; i < n; i++ {
		out.Set(i, m.vec.Get(m.p.NLB()+i))
	}
	return out
}

// SetRoutingBits installs a routing payload produced by RoutingBits.
func (m *MacroConfig) SetRoutingBits(v *bits.Vec) {
	n := m.p.NRaw() - m.p.NLB()
	if v.Len() != n {
		panic(fmt.Sprintf("arch: routing payload has %d bits, want %d", v.Len(), n))
	}
	for i := 0; i < n; i++ {
		m.vec.Set(m.p.NLB()+i, v.Get(i))
	}
}

// Components returns the partition of the macro's conductors into
// electrically connected components induced by the on switches. Each
// conductor is mapped to the smallest conductor index of its component;
// isolated conductors map to themselves. This is the electrical
// equivalence the de-virtualization feedback loop compares.
func (m *MacroConfig) Components() []Cond {
	n := m.p.NumConds()
	parent := make([]Cond, n)
	for i := range parent {
		parent[i] = Cond(i)
	}
	var find func(Cond) Cond
	find = func(c Cond) Cond {
		for parent[c] != c {
			parent[c] = parent[parent[c]]
			c = parent[c]
		}
		return c
	}
	union := func(a, b Cond) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra // smaller index becomes the root
	}
	for i, sw := range m.p.Switches() {
		if m.SwitchOn(i) {
			union(sw.A, sw.B)
		}
	}
	out := make([]Cond, n)
	for i := range out {
		out[i] = find(Cond(i))
	}
	return out
}
