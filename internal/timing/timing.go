// Package timing estimates the critical path of a placed-and-routed
// design under a unit-delay model: each conductor traversed costs one
// delay unit, each LUT a fixed logic delay. The paper's flow is
// routability-driven, but wirelength-based delay is the standard
// quality metric for comparing routings (and for spotting router
// regressions), so the harness reports it alongside channel width.
package timing

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/rrg"
)

// Delays configures the unit-delay model.
type Delays struct {
	// PerConductor is the delay of one wire or pin conductor (default 1).
	PerConductor int
	// PerLUT is the logic-block delay (default 3, roughly a 6-LUT's
	// logic depth relative to one wire hop).
	PerLUT int
}

func (d Delays) withDefaults() Delays {
	if d.PerConductor == 0 {
		d.PerConductor = 1
	}
	if d.PerLUT == 0 {
		d.PerLUT = 3
	}
	return d
}

// Analysis is the result of a timing pass.
type Analysis struct {
	// CriticalPath is the largest register-to-register (or pad-to-pad)
	// delay in the unit model.
	CriticalPath int
	// NetDelay[n] is the source-to-farthest-sink delay of net n.
	NetDelay []int
	// MaxNet is the net with the largest delay.
	MaxNet netlist.NetID
}

// Analyze computes per-net routed delays and the critical path. It
// fails on combinational cycles (which the simulators reject too).
func Analyze(d *netlist.Design, res *route.Result, delays Delays) (*Analysis, error) {
	delays = delays.withDefaults()
	a := &Analysis{NetDelay: make([]int, len(d.Nets)), MaxNet: netlist.NoNet}

	// Per-net delay: depth of the routing tree in conductors.
	for ni := range res.Routes {
		nr := &res.Routes[ni]
		depth := map[rrg.NodeID]int{nr.Source: 1}
		max := 0
		for _, e := range nr.Edges {
			dep := depth[e.From] + 1
			depth[e.To] = dep
			if dep > max {
				max = dep
			}
		}
		a.NetDelay[ni] = max * delays.PerConductor
		if a.MaxNet == netlist.NoNet || a.NetDelay[ni] > a.NetDelay[a.MaxNet] {
			a.MaxNet = netlist.NetID(ni)
		}
	}

	// Arrival times through the combinational cones.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	mark := make([]int, len(d.Blocks))
	arrival := make([]int, len(d.Blocks)) // at block output
	var visit func(b netlist.BlockID) error
	visit = func(b netlist.BlockID) error {
		switch mark[b] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("timing: combinational cycle through block %q", d.Blocks[b].Name)
		}
		mark[b] = visiting
		blk := &d.Blocks[b]
		in := 0
		if blk.Kind == netlist.LogicBlock || blk.Kind == netlist.OutputPad {
			for _, net := range blk.Inputs {
				if net == netlist.NoNet {
					continue
				}
				drv := d.Nets[net].Driver
				t := a.NetDelay[net]
				if src := &d.Blocks[drv]; src.Kind == netlist.LogicBlock && !src.Registered {
					if err := visit(drv); err != nil {
						return err
					}
					t += arrival[drv]
				}
				if t > in {
					in = t
				}
			}
		}
		if blk.Kind == netlist.LogicBlock {
			in += delays.PerLUT
		}
		arrival[b] = in
		mark[b] = done
		if in > a.CriticalPath {
			a.CriticalPath = in
		}
		return nil
	}
	for b := range d.Blocks {
		if err := visit(netlist.BlockID(b)); err != nil {
			return nil, err
		}
	}
	return a, nil
}
