package timing

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
)

// chainDesign builds inpad -> lb0 -> lb1 -> ... -> outpad.
func chainDesign(n, k int, registered bool) *netlist.Design {
	d := &netlist.Design{Name: "chain", K: k}
	truth := bits.NewVec(1 << uint(k))
	truth.Set(1, true) // f = x0
	_, cur := d.AddInputPad("a")
	for i := 0; i < n; i++ {
		_, cur = d.AddLogicBlock("lb", []netlist.NetID{cur}, truth, registered)
	}
	d.AddOutputPad("z", cur)
	return d
}

func routeDesign(t *testing.T, d *netlist.Design, size, w int) *route.Result {
	t.Helper()
	pl, err := place.Place(d, arch.GridForSize(size), place.Options{Seed: 1, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: w, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCombinationalChainAccumulates(t *testing.T) {
	d := chainDesign(5, 6, false)
	res := routeDesign(t, d, 4, 8)
	a, err := Analyze(d, res, Delays{})
	if err != nil {
		t.Fatal(err)
	}
	// Five LUTs at 3 units each plus at least one conductor per hop.
	if a.CriticalPath < 5*3+6 {
		t.Errorf("critical path %d too small for a 5-LUT chain", a.CriticalPath)
	}
	if a.MaxNet == netlist.NoNet {
		t.Error("no max net identified")
	}
}

func TestRegistersCutPaths(t *testing.T) {
	comb := chainDesign(6, 6, false)
	reg := chainDesign(6, 6, true)
	resC := routeDesign(t, comb, 4, 8)
	resR := routeDesign(t, reg, 4, 8)
	ac, err := Analyze(comb, resC, Delays{})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Analyze(reg, resR, Delays{})
	if err != nil {
		t.Fatal(err)
	}
	if ar.CriticalPath >= ac.CriticalPath {
		t.Errorf("registered chain path %d should be shorter than combinational %d",
			ar.CriticalPath, ac.CriticalPath)
	}
}

func TestNetDelayPositiveForRoutedNets(t *testing.T) {
	d := chainDesign(3, 6, false)
	res := routeDesign(t, d, 4, 8)
	a, err := Analyze(d, res, Delays{})
	if err != nil {
		t.Fatal(err)
	}
	for ni, nd := range a.NetDelay {
		if len(d.Nets[ni].Sinks) > 0 && nd <= 0 {
			t.Errorf("net %d has %d sinks but delay %d", ni, len(d.Nets[ni].Sinks), nd)
		}
	}
}

func TestCustomDelays(t *testing.T) {
	d := chainDesign(2, 6, false)
	res := routeDesign(t, d, 4, 8)
	a1, err := Analyze(d, res, Delays{PerConductor: 1, PerLUT: 1})
	if err != nil {
		t.Fatal(err)
	}
	a10, err := Analyze(d, res, Delays{PerConductor: 10, PerLUT: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a10.CriticalPath <= a1.CriticalPath {
		t.Error("raising conductor delay must raise the critical path")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	d := &netlist.Design{Name: "loop", K: 6}
	truth := bits.NewVec(64)
	truth.Set(1, true)
	// Self-feeding unregistered block.
	_, aNet := d.AddInputPad("a")
	id, out := d.AddLogicBlock("x", []netlist.NetID{aNet, netlist.NoNet}, truth, false)
	d.Blocks[id].Inputs[1] = out
	d.Nets[out].Sinks = append(d.Nets[out].Sinks, netlist.BlockPin{Block: id, Input: 1})
	d.AddOutputPad("z", out)
	res := routeDesign(t, d, 3, 8)
	if _, err := Analyze(d, res, Delays{}); err == nil {
		t.Error("combinational loop not detected")
	}
}
