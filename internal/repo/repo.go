// Package repo is the persistence tier of the runtime manager: a
// crash-safe, content-addressed on-disk store for Virtual Bit-Stream
// containers. The design flow spends minutes producing a VBS; this
// package makes sure a daemon restart or RAM-cache eviction never
// costs one.
//
// # Disk layout
//
// Blobs are sharded by the first two digest bytes so no directory
// grows unbounded:
//
//	<dir>/aa/bb/<digest>.vbs   blob (aa, bb = first two digest bytes)
//	<dir>/tmp/                 staging area for in-flight writes
//	<dir>/quarantine/          blobs that failed verification
//
// Every blob file carries a small self-describing header before the
// payload:
//
//	magic   "VBR1"   4 bytes
//	version uint8    currently 1
//	crc32c  uint32   Castagnoli CRC of the payload, big-endian
//	length  uint32   payload bytes, big-endian
//
// # Crash safety
//
// Writes are staged in tmp/, fsynced, then renamed into place and the
// shard directory fsynced (the classic temp-file → fsync → rename
// sequence), so a blob is either fully present or absent — never
// half-written. Reads re-verify both the CRC and the SHA-256 content
// address against the file name. Open runs a recovery scan that
// indexes valid blobs, moves corrupt ones to quarantine/, removes
// stale temp files, and reports the totals.
package repo

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Digest is the SHA-256 content address of a VBS container.
type Digest [sha256.Size]byte

// DigestOf returns the content address of raw container bytes.
func DigestOf(data []byte) Digest { return sha256.Sum256(data) }

// String returns the full lowercase hex form.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns a 12-hex-digit prefix for logs and task listings.
func (d Digest) Short() string { return d.String()[:12] }

// ParseDigest reads the hex form produced by String.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return d, fmt.Errorf("repo: bad digest %q", s)
	}
	copy(d[:], b)
	return d, nil
}

const (
	blobMagic   = "VBR1"
	blobVersion = 1
	headerSize  = 4 + 1 + 4 + 4 // magic + version + crc32c + length
	blobExt     = ".vbs"

	tmpDir        = "tmp"
	quarantineDir = "quarantine"
)

// castagnoli is the CRC polynomial used for payload checksums (the
// same choice as aistore and most modern object stores: hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNotFound reports a digest the repository does not hold.
var ErrNotFound = errors.New("repo: blob not found")

// ErrReadOnly reports a mutation attempted on a read-only repository.
var ErrReadOnly = errors.New("repo: read-only")

// ErrCorrupt wraps verification failures (bad magic, CRC or digest
// mismatch, truncation). A corrupt blob is quarantined, never served.
var ErrCorrupt = errors.New("repo: corrupt blob")

// Options tunes Open.
type Options struct {
	// ReadOnly opens the repository for inspection only: the recovery
	// scan reports corruption without quarantining, and Put, Delete and
	// GC are refused. Used by stat/verify tooling over a live data dir.
	ReadOnly bool
}

// ScanReport summarizes the recovery scan Open runs.
type ScanReport struct {
	// Scanned counts blob files examined.
	Scanned int `json:"scanned"`
	// Recovered counts valid blobs indexed from disk.
	Recovered int `json:"recovered"`
	// Quarantined counts corrupt blobs moved aside (or, read-only,
	// merely detected).
	Quarantined int `json:"quarantined"`
	// TempRemoved counts stale in-flight temp files deleted.
	TempRemoved int `json:"temp_removed"`
	// Tombstones counts live delete tombstones loaded from disk.
	Tombstones int `json:"tombstones"`
	// Bytes is the total payload bytes of recovered blobs.
	Bytes int64 `json:"bytes"`
}

// Stats is a point-in-time snapshot of the repository.
type Stats struct {
	// Blobs and Bytes describe the current index.
	Blobs int   `json:"blobs"`
	Bytes int64 `json:"bytes"`
	// Reads and Writes count payloads served and blobs persisted since
	// Open.
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// Recovered and Quarantined accumulate the Open scan plus any
	// later verification failures.
	Recovered   int `json:"recovered"`
	Quarantined int `json:"quarantined"`
	// WriteErrors and ReadErrors count failed Puts and failed
	// non-corrupt Gets (corrupt reads count under Quarantined),
	// including failures forced through the fault-injection seam.
	WriteErrors uint64 `json:"write_errors"`
	ReadErrors  uint64 `json:"read_errors"`
	// Tombstones counts live delete tombstones (see tombstone.go).
	Tombstones int `json:"tombstones"`
}

// BlobStat describes one stored blob in List.
type BlobStat struct {
	Digest Digest
	// Bytes is the payload (container) size, header excluded.
	Bytes int64
}

// Repo is a content-addressed blob store rooted at one directory,
// safe for concurrent use.
type Repo struct {
	dir string
	ro  bool

	mu    sync.RWMutex
	index map[Digest]int64 // payload bytes per blob
	tombs map[Digest]int64 // unix expiry (seconds) per tombstoned digest
	bytes int64

	scan        ScanReport
	reads       uint64
	writes      uint64
	writeErrors uint64
	readErrors  uint64
	quarantined int // scan + runtime verification failures

	// faults is the injectable I/O fault seam (see Faults); nil means
	// no faults armed — the only state real deployments ever see.
	faults atomic.Pointer[Faults]
}

// Open roots a repository at dir, creating the directory tree when
// absent (unless read-only) and running the recovery scan.
func Open(dir string, opts Options) (*Repo, error) {
	r := &Repo{
		dir:   dir,
		ro:    opts.ReadOnly,
		index: make(map[Digest]int64),
		tombs: make(map[Digest]int64),
	}
	if r.ro {
		// A read-only open of a path that is not a directory must fail
		// loudly: "verified 0 blobs OK" on a typo'd -dir would let a
		// wrong path pass inspection of a repository that was never
		// opened.
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("repo: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("repo: %s is not a directory", dir)
		}
	} else {
		for _, sub := range []string{"", tmpDir, quarantineDir, tombstoneDir} {
			if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
				return nil, fmt.Errorf("repo: %w", err)
			}
		}
	}
	if err := r.recover(); err != nil {
		return nil, err
	}
	r.loadTombstones()
	return r, nil
}

// Dir returns the repository root.
func (r *Repo) Dir() string { return r.dir }

// ScanReport returns the recovery scan Open performed.
func (r *Repo) ScanReport() ScanReport {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.scan
}

// blobPath returns <dir>/aa/bb/<digest>.vbs.
func (r *Repo) blobPath(d Digest) string {
	return BlobPath(r.dir, d)
}

// BlobPath returns the on-disk path of a digest's blob file under a
// repository root — <dir>/aa/bb/<digest>.vbs. Exported for tooling
// (e.g. chaos blob corruption) that must name a repository file
// without opening the repository.
func BlobPath(dir string, d Digest) string {
	hx := d.String()
	return filepath.Join(dir, hx[:2], hx[2:4], hx+blobExt)
}

// recover walks the shard tree, indexing valid blobs, quarantining
// corrupt ones and clearing stale temp files.
func (r *Repo) recover() error {
	// Stale temp files are debris from writes interrupted mid-stage;
	// the rename never happened, so they reference nothing.
	if !r.ro {
		if ents, err := os.ReadDir(filepath.Join(r.dir, tmpDir)); err == nil {
			for _, e := range ents {
				if os.Remove(filepath.Join(r.dir, tmpDir, e.Name())) == nil {
					r.scan.TempRemoved++
				}
			}
		}
	}
	root := os.DirFS(r.dir)
	err := fs.WalkDir(root, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == tmpDir || path == quarantineDir || path == tombstoneDir {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, blobExt) {
			return nil
		}
		r.scan.Scanned++
		full := filepath.Join(r.dir, filepath.FromSlash(path))
		dg, payload, verr := readBlob(full)
		if verr != nil {
			r.scan.Quarantined++
			r.quarantined++
			if !r.ro {
				r.quarantine(full)
			}
			return nil
		}
		// A valid blob in the wrong shard path is still corrupt in the
		// content-addressed sense: its name would never be looked up.
		if full != r.blobPath(dg) {
			r.scan.Quarantined++
			r.quarantined++
			if !r.ro {
				r.quarantine(full)
			}
			return nil
		}
		r.index[dg] = int64(len(payload))
		r.bytes += int64(len(payload))
		r.scan.Recovered++
		r.scan.Bytes += int64(len(payload))
		return nil
	})
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("repo: recovery scan: %w", err)
	}
	return nil
}

// quarantine moves a failed blob aside, best-effort: recovery must
// not abort because one bad file also resists moving.
func (r *Repo) quarantine(path string) {
	dst := filepath.Join(r.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		_ = os.Remove(path)
	}
}

// readBlob reads and verifies one blob file, returning the content
// address computed from the payload (the caller compares it against
// the file name / requested digest).
func readBlob(path string) (Digest, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Digest{}, nil, err
	}
	return verifyBlob(path, raw)
}

// readBlobFaulty is readBlob with the fault-injection seam applied to
// the bytes just read — the Get path. The recovery scan deliberately
// bypasses it: injected faults model a rotting serve path, not a
// different disk at boot.
func (r *Repo) readBlobFaulty(path string) (Digest, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Digest{}, nil, err
	}
	if f := r.faults.Load(); f != nil {
		if f.FailReads {
			return Digest{}, nil, fmt.Errorf("repo: read %s: %w", filepath.Base(path), ErrInjected)
		}
		if f.ShortReads && len(raw) > headerSize {
			raw = raw[:headerSize+(len(raw)-headerSize)/2]
		}
		if f.CorruptReads && len(raw) > headerSize {
			raw[len(raw)-1] ^= 0xff
		}
	}
	return verifyBlob(path, raw)
}

// verifyBlob parses raw blob-file bytes, checking header, length and
// CRC, and returns the payload's content address.
func verifyBlob(path string, raw []byte) (Digest, []byte, error) {
	var d Digest
	if len(raw) < headerSize || string(raw[:4]) != blobMagic {
		return d, nil, fmt.Errorf("%w: bad magic in %s", ErrCorrupt, filepath.Base(path))
	}
	if raw[4] != blobVersion {
		return d, nil, fmt.Errorf("%w: unsupported version %d in %s", ErrCorrupt, raw[4], filepath.Base(path))
	}
	crc := binary.BigEndian.Uint32(raw[5:])
	length := binary.BigEndian.Uint32(raw[9:])
	payload := raw[headerSize:]
	if int(length) != len(payload) {
		return d, nil, fmt.Errorf("%w: %s has %d payload bytes, header says %d",
			ErrCorrupt, filepath.Base(path), len(payload), length)
	}
	if got := crc32.Checksum(payload, castagnoli); got != crc {
		return d, nil, fmt.Errorf("%w: CRC mismatch in %s", ErrCorrupt, filepath.Base(path))
	}
	return DigestOf(payload), payload, nil
}

// Put persists a container, computing its content address. It returns
// the digest and whether the blob was already stored.
func (r *Repo) Put(data []byte) (Digest, bool, error) {
	d := DigestOf(data)
	existed, err := r.PutDigest(d, data)
	return d, existed, err
}

// PutDigest persists a container under a digest the caller has
// already computed (it must be DigestOf(data); reads verify it). The
// write is atomic: temp file → fsync → rename → fsync directory.
func (r *Repo) PutDigest(d Digest, data []byte) (existed bool, err error) {
	existed, err = r.putDigest(d, data)
	if err != nil && !errors.Is(err, ErrReadOnly) && !errors.Is(err, ErrTombstoned) {
		r.mu.Lock()
		r.writeErrors++
		r.mu.Unlock()
	}
	return existed, err
}

func (r *Repo) putDigest(d Digest, data []byte) (existed bool, err error) {
	if r.ro {
		return false, ErrReadOnly
	}
	r.mu.RLock()
	_, ok := r.index[d]
	r.mu.RUnlock()
	if ok {
		return true, nil
	}
	if r.HasTombstone(d) {
		return false, fmt.Errorf("repo: put %s: %w", d.Short(), ErrTombstoned)
	}
	if f := r.faults.Load(); f != nil && f.FailPuts {
		return false, fmt.Errorf("repo: write %s: %w", d.Short(), ErrInjected)
	}

	final := r.blobPath(d)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return false, fmt.Errorf("repo: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(r.dir, tmpDir), d.Short()+".*")
	if err != nil {
		return false, fmt.Errorf("repo: %w", err)
	}
	defer func() {
		if err != nil {
			_ = os.Remove(tmp.Name())
		}
	}()
	header := make([]byte, headerSize)
	copy(header, blobMagic)
	header[4] = blobVersion
	binary.BigEndian.PutUint32(header[5:], crc32.Checksum(data, castagnoli))
	binary.BigEndian.PutUint32(header[9:], uint32(len(data)))
	if _, err = tmp.Write(header); err == nil {
		_, err = tmp.Write(data)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return false, fmt.Errorf("repo: write %s: %w", d.Short(), err)
	}
	if err = os.Rename(tmp.Name(), final); err != nil {
		return false, fmt.Errorf("repo: commit %s: %w", d.Short(), err)
	}
	syncDir(filepath.Dir(final))

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.index[d]; ok {
		// A concurrent Put of the same digest renamed an identical blob
		// over ours; content addressing makes that harmless.
		return true, nil
	}
	r.index[d] = int64(len(data))
	r.bytes += int64(len(data))
	r.writes++
	return false, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = f.Sync()
	_ = f.Close()
}

// Get returns a blob's payload, re-verifying the CRC and content
// address. A blob that fails verification is quarantined and reported
// as corrupt — never served.
func (r *Repo) Get(d Digest) ([]byte, error) {
	r.mu.RLock()
	_, ok := r.index[d]
	r.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	path := r.blobPath(d)
	got, payload, err := r.readBlobFaulty(path)
	if err == nil && got != d {
		err = fmt.Errorf("%w: content is %s, expected %s", ErrCorrupt, got.Short(), d.Short())
	}
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			r.dropCorrupt(d, path)
		} else {
			r.mu.Lock()
			r.readErrors++
			r.mu.Unlock()
		}
		return nil, err
	}
	r.mu.Lock()
	r.reads++
	r.mu.Unlock()
	return payload, nil
}

// dropCorrupt removes a blob that failed a read-time verification
// from the index and (when writable) moves the file to quarantine.
func (r *Repo) dropCorrupt(d Digest, path string) {
	r.mu.Lock()
	if n, ok := r.index[d]; ok {
		delete(r.index, d)
		r.bytes -= n
	}
	r.quarantined++
	r.mu.Unlock()
	if !r.ro {
		r.quarantine(path)
	}
}

// Has reports whether a digest is indexed.
func (r *Repo) Has(d Digest) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.index[d]
	return ok
}

// Delete removes a blob from disk and the index.
func (r *Repo) Delete(d Digest) error {
	if r.ro {
		return ErrReadOnly
	}
	r.mu.Lock()
	n, ok := r.index[d]
	if ok {
		delete(r.index, d)
		r.bytes -= n
	}
	r.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	if err := os.Remove(r.blobPath(d)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("repo: %w", err)
	}
	return nil
}

// Len returns the number of indexed blobs.
func (r *Repo) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.index)
}

// Bytes returns the total indexed payload bytes.
func (r *Repo) Bytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.bytes
}

// List returns every indexed blob, sorted by digest for stable
// output.
func (r *Repo) List() []BlobStat {
	r.mu.RLock()
	out := make([]BlobStat, 0, len(r.index))
	for d, n := range r.index {
		out = append(out, BlobStat{Digest: d, Bytes: n})
	}
	r.mu.RUnlock()
	// Byte order equals hex order, so compare raw digests.
	sort.Slice(out, func(a, b int) bool {
		return bytes.Compare(out[a].Digest[:], out[b].Digest[:]) < 0
	})
	return out
}

// Stats returns current counters.
func (r *Repo) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Blobs:       len(r.index),
		Bytes:       r.bytes,
		Reads:       r.reads,
		Writes:      r.writes,
		Recovered:   r.scan.Recovered,
		Quarantined: r.quarantined,
		WriteErrors: r.writeErrors,
		ReadErrors:  r.readErrors,
		Tombstones:  len(r.tombs),
	}
}

// VerifyReport summarizes a full re-verification pass.
type VerifyReport struct {
	Checked int
	Bytes   int64
	// Corrupt lists digests that failed; in a writable repository they
	// have been quarantined.
	Corrupt []Digest
}

// Verify re-reads every indexed blob, checking CRC and content
// address. Corrupt blobs are quarantined (unless read-only) and
// reported.
func (r *Repo) Verify() VerifyReport {
	rep, _ := r.VerifyCtx(context.Background())
	return rep
}

// VerifyCtx is Verify bounded by ctx, checked between blobs — the
// scrub job runs it under an abortable job context, so a fleet-wide
// verification can be cancelled without waiting out the disk. The
// partial report covers the blobs checked before cancellation.
func (r *Repo) VerifyCtx(ctx context.Context) (VerifyReport, error) {
	var rep VerifyReport
	for _, b := range r.List() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rep.Checked++
		if _, err := r.Get(b.Digest); err != nil {
			rep.Corrupt = append(rep.Corrupt, b.Digest)
			continue
		}
		rep.Bytes += b.Bytes
	}
	return rep, nil
}

// GCReport summarizes a GC pass.
type GCReport struct {
	// QuarantineRemoved / TempRemoved count files deleted from the two
	// holding areas; BytesReclaimed totals their sizes.
	QuarantineRemoved int
	TempRemoved       int
	BytesReclaimed    int64
}

// GC purges the quarantine and temp holding areas. Indexed blobs are
// never touched: a content-addressed store has no unreferenced live
// objects to collect.
func (r *Repo) GC() (GCReport, error) {
	if r.ro {
		return GCReport{}, ErrReadOnly
	}
	var rep GCReport
	for _, sub := range []string{quarantineDir, tmpDir} {
		ents, err := os.ReadDir(filepath.Join(r.dir, sub))
		if err != nil {
			continue
		}
		for _, e := range ents {
			full := filepath.Join(r.dir, sub, e.Name())
			if info, err := e.Info(); err == nil {
				rep.BytesReclaimed += info.Size()
			}
			if os.Remove(full) == nil {
				if sub == quarantineDir {
					rep.QuarantineRemoved++
				} else {
					rep.TempRemoved++
				}
			}
		}
	}
	return rep, nil
}
