package repo

import "errors"

// ErrInjected marks a failure produced by the fault-injection seam,
// never by real I/O. Callers treat it exactly like the disk error it
// stands in for; tests and chaos recipes match it to prove a failure
// was the one they scheduled.
var ErrInjected = errors.New("repo: injected fault")

// Faults is the injectable I/O fault seam of a repository. Tests and
// chaos recipes use it to force the error paths real disks only take
// under ENOSPC, torn writes or bit rot — deterministically:
//
//   - FailPuts makes PutDigest fail before staging any bytes, the
//     shape of a full or read-only disk. The store layer surfaces it
//     as store.ErrDisk, which a cluster gateway fails over on.
//   - FailReads makes Get fail as if the underlying file read
//     errored. The blob stays indexed (the data is presumed intact).
//   - CorruptReads flips a payload byte after the file is read,
//     driving the CRC-mismatch verification path: the blob is
//     quarantined and never served.
//   - ShortReads truncates the payload after the file is read,
//     driving the truncation verification path (same quarantine).
//
// Note that CorruptReads and ShortReads corrupt the bytes *read*, not
// the file: the quarantine that follows moves a healthy file aside.
// That is the point — the repository must behave as if the disk
// rotted, and the observable contract (error out, count, never serve
// corrupt bytes) is what is under test. Injected faults only apply to
// Get; the Open recovery scan always sees the disk as it is.
type Faults struct {
	FailPuts     bool `json:"fail_puts"`
	FailReads    bool `json:"fail_reads"`
	CorruptReads bool `json:"corrupt_reads"`
	ShortReads   bool `json:"short_reads"`
}

// Any reports whether at least one fault is armed.
func (f Faults) Any() bool {
	return f.FailPuts || f.FailReads || f.CorruptReads || f.ShortReads
}

// SetFaults arms (or, with the zero value, clears) the repository's
// fault-injection seam. Safe to call concurrently with operations;
// each operation reads the seam once at its start.
func (r *Repo) SetFaults(f Faults) {
	if !f.Any() {
		r.faults.Store(nil)
		return
	}
	r.faults.Store(&f)
}

// Faults returns the currently armed faults (zero when clear).
func (r *Repo) Faults() Faults {
	if f := r.faults.Load(); f != nil {
		return *f
	}
	return Faults{}
}
