package repo

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, dir string) *Repo {
	t.Helper()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPutGetRoundTrip(t *testing.T) {
	r := open(t, t.TempDir())
	data := []byte("not a real VBS, but the repo stores opaque payloads")
	d, existed, err := r.Put(data)
	if err != nil || existed {
		t.Fatalf("Put: existed=%v err=%v", existed, err)
	}
	if !r.Has(d) || r.Len() != 1 || r.Bytes() != int64(len(data)) {
		t.Fatalf("index after Put: has=%v len=%d bytes=%d", r.Has(d), r.Len(), r.Bytes())
	}
	got, err := r.Get(d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get: %v (equal=%v)", err, bytes.Equal(got, data))
	}
	if _, existed, _ := r.Put(data); !existed {
		t.Fatal("second Put of same content should report existed")
	}
	st := r.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGetUnknown(t *testing.T) {
	r := open(t, t.TempDir())
	if _, err := r.Get(DigestOf([]byte("x"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestRecoveryAfterReopen(t *testing.T) {
	dir := t.TempDir()
	r := open(t, dir)
	var digests []Digest
	for i := 0; i < 20; i++ {
		d, _, err := r.Put([]byte(fmt.Sprintf("blob-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	// No Close exists (writes are durable at Put return): reopening the
	// same directory models a crash-restart.
	r2 := open(t, dir)
	rep := r2.ScanReport()
	if rep.Recovered != 20 || rep.Quarantined != 0 {
		t.Fatalf("scan: %+v", rep)
	}
	for i, d := range digests {
		got, err := r2.Get(d)
		if err != nil || string(got) != fmt.Sprintf("blob-%d", i) {
			t.Fatalf("blob %d after reopen: %q, %v", i, got, err)
		}
	}
}

func TestScanQuarantinesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	r := open(t, dir)
	d, _, err := r.Put([]byte("soon to be flipped"))
	if err != nil {
		t.Fatal(err)
	}
	keep, _, err := r.Put([]byte("intact"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk: CRC and digest both now disagree.
	path := r.blobPath(d)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := open(t, dir)
	rep := r2.ScanReport()
	if rep.Quarantined != 1 || rep.Recovered != 1 {
		t.Fatalf("scan: %+v", rep)
	}
	if r2.Has(d) {
		t.Fatal("corrupt blob must not be indexed")
	}
	if _, err := r2.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt blob must never be served: %v", err)
	}
	if _, err := r2.Get(keep); err != nil {
		t.Fatalf("intact blob lost: %v", err)
	}
	qs, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qs) != 1 {
		t.Fatalf("quarantine dir: %v entries, %v", len(qs), err)
	}
}

func TestReadTimeCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	r := open(t, dir)
	d, _, err := r.Put([]byte("valid at scan, corrupted later"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(r.blobPath(d))
	raw[headerSize] ^= 0x01
	if err := os.WriteFile(r.blobPath(d), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if r.Has(d) {
		t.Fatal("corrupt blob still indexed after failed Get")
	}
	if st := r.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestScanRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	open(t, dir) // create layout
	stale := filepath.Join(dir, tmpDir, "deadbeef.123")
	if err := os.WriteFile(stale, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir)
	if rep := r.ScanReport(); rep.TempRemoved != 1 {
		t.Fatalf("scan: %+v", rep)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp file survived recovery")
	}
}

func TestDelete(t *testing.T) {
	r := open(t, t.TempDir())
	d, _, err := r.Put([]byte("short-lived"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(d); err != nil {
		t.Fatal(err)
	}
	if r.Has(d) || r.Bytes() != 0 {
		t.Fatal("blob survived Delete")
	}
	if err := r.Delete(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := os.Stat(r.blobPath(d)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("blob file survived Delete")
	}
}

func TestVerifyQuarantines(t *testing.T) {
	dir := t.TempDir()
	r := open(t, dir)
	good, _, _ := r.Put([]byte("good"))
	bad, _, _ := r.Put([]byte("bad soon"))
	raw, _ := os.ReadFile(r.blobPath(bad))
	raw[len(raw)-1] ^= 0x80
	if err := os.WriteFile(r.blobPath(bad), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := r.Verify()
	if rep.Checked != 2 || len(rep.Corrupt) != 1 || rep.Corrupt[0] != bad {
		t.Fatalf("verify: %+v", rep)
	}
	if !r.Has(good) || r.Has(bad) {
		t.Fatal("verify kept the wrong blobs")
	}
}

func TestGCPurgesQuarantineAndTmp(t *testing.T) {
	dir := t.TempDir()
	r := open(t, dir)
	d, _, _ := r.Put([]byte("to be quarantined"))
	raw, _ := os.ReadFile(r.blobPath(d))
	raw[len(raw)-1] ^= 0x80
	os.WriteFile(r.blobPath(d), raw, 0o644)
	r.Verify() // quarantines d
	os.WriteFile(filepath.Join(dir, tmpDir, "leftover.tmp"), []byte("x"), 0o644)

	rep, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.QuarantineRemoved != 1 || rep.TempRemoved != 1 || rep.BytesReclaimed == 0 {
		t.Fatalf("gc: %+v", rep)
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	rw := open(t, dir)
	d, _, err := rw.Put([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ro.Get(d); err != nil || string(got) != "payload" {
		t.Fatalf("read-only Get: %q, %v", got, err)
	}
	if _, _, err := ro.Put([]byte("nope")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put: %v", err)
	}
	if err := ro.Delete(d); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Delete: %v", err)
	}
	if _, err := ro.GC(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only GC: %v", err)
	}
}

func TestReadOnlyOpenRejectsMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "no-such-repo"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only Open of a nonexistent dir must fail, not report an empty healthy repo")
	}
}

func TestReadOnlyScanDoesNotQuarantine(t *testing.T) {
	dir := t.TempDir()
	rw := open(t, dir)
	d, _, _ := rw.Put([]byte("will corrupt"))
	raw, _ := os.ReadFile(rw.blobPath(d))
	raw[len(raw)-1] ^= 0x80
	os.WriteFile(rw.blobPath(d), raw, 0o644)

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep := ro.ScanReport(); rep.Quarantined != 1 {
		t.Fatalf("scan: %+v", rep)
	}
	// The corrupt file must still be where it was: inspection tools
	// must not mutate a live data dir.
	if _, err := os.Stat(rw.blobPath(d)); err != nil {
		t.Fatalf("read-only scan moved the blob: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	r := open(t, t.TempDir())
	for i := 0; i < 10; i++ {
		if _, _, err := r.Put([]byte(fmt.Sprintf("item %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l := r.List()
	if len(l) != 10 {
		t.Fatalf("len=%d", len(l))
	}
	for i := 1; i < len(l); i++ {
		if l[i-1].Digest.String() >= l[i].Digest.String() {
			t.Fatal("List not sorted by digest")
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	r := open(t, t.TempDir())
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// Half the digests collide across writers to exercise the
				// concurrent same-digest Put path.
				data := []byte(fmt.Sprintf("blob-%d", (w%2)*100+i))
				d, _, err := r.Put(data)
				if err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, err := r.Get(d)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("Get after Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 40 {
		t.Fatalf("expected 40 distinct blobs, have %d", r.Len())
	}
	if rep := r.Verify(); len(rep.Corrupt) != 0 {
		t.Fatalf("verify after concurrent writes: %+v", rep)
	}
}
