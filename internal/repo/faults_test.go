package repo

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openFaultRepo(t *testing.T) *Repo {
	t.Helper()
	r, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return r
}

func TestFaultsFailPuts(t *testing.T) {
	r := openFaultRepo(t)
	r.SetFaults(Faults{FailPuts: true})

	data := []byte("fail-puts payload")
	if _, _, err := r.Put(data); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put under FailPuts: err=%v, want ErrInjected", err)
	}
	if s := r.Stats(); s.WriteErrors != 1 || s.Blobs != 0 {
		t.Fatalf("stats after failed put: %+v, want WriteErrors=1 Blobs=0", s)
	}

	// Disarming restores writes, and a duplicate put under faults still
	// dedups (the seam models disk writes, not index lookups).
	r.SetFaults(Faults{})
	d, existed, err := r.Put(data)
	if err != nil || existed {
		t.Fatalf("Put after clearing faults: existed=%v err=%v", existed, err)
	}
	r.SetFaults(Faults{FailPuts: true})
	if _, err := r.PutDigest(d, data); err != nil {
		t.Fatalf("dedup PutDigest under FailPuts: %v", err)
	}
	if s := r.Stats(); s.WriteErrors != 1 {
		t.Fatalf("dedup put must not count a write error: %+v", s)
	}
}

func TestFaultsFailReads(t *testing.T) {
	r := openFaultRepo(t)
	data := []byte("fail-reads payload")
	d, _, err := r.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	r.SetFaults(Faults{FailReads: true})
	got, err := r.Get(d)
	if !errors.Is(err, ErrInjected) || got != nil {
		t.Fatalf("Get under FailReads: data=%v err=%v, want nil, ErrInjected", got, err)
	}
	s := r.Stats()
	if s.ReadErrors != 1 || s.Quarantined != 0 {
		t.Fatalf("stats after injected read error: %+v, want ReadErrors=1 Quarantined=0", s)
	}
	// The blob stays indexed — the file on disk is presumed intact.
	if !r.Has(d) {
		t.Fatal("blob dropped from index by a transient read fault")
	}
	r.SetFaults(Faults{})
	if got, err := r.Get(d); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after clearing faults: err=%v", err)
	}
}

// corruptionFaultCases drive the two verification failure paths: a
// flipped payload byte (CRC mismatch) and a truncated payload (short
// read). Both must quarantine and never return bytes.
func TestFaultsCorruptAndShortReads(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fault Faults
	}{
		{"corrupt", Faults{CorruptReads: true}},
		{"short", Faults{ShortReads: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := openFaultRepo(t)
			data := []byte("verification payload " + tc.name)
			d, _, err := r.Put(data)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}

			r.SetFaults(tc.fault)
			got, err := r.Get(d)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Get under %s: err=%v, want ErrCorrupt", tc.name, err)
			}
			if got != nil {
				t.Fatalf("Get under %s returned bytes: %q", tc.name, got)
			}
			s := r.Stats()
			if s.Quarantined != 1 || s.ReadErrors != 0 {
				t.Fatalf("stats: %+v, want Quarantined=1 ReadErrors=0", s)
			}
			if r.Has(d) {
				t.Fatal("quarantined blob still indexed")
			}
			if _, err := r.Get(d); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after quarantine: %v, want ErrNotFound", err)
			}

			// The healthy file was moved aside, not deleted: it must sit
			// in the quarantine directory.
			matches, err := filepath.Glob(filepath.Join(r.Dir(), "quarantine", "*"+blobExt))
			if err != nil || len(matches) != 1 {
				t.Fatalf("quarantine files: %v (err=%v), want 1", matches, err)
			}
		})
	}
}

// TestFaultsRecoveryScanUnaffected proves injected faults only rot the
// serve path: a re-open of the same directory sees the disk as it is.
func TestFaultsRecoveryScanUnaffected(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	data := []byte("survives reopen")
	d, _, err := r.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	r.SetFaults(Faults{CorruptReads: true, ShortReads: true, FailReads: true})

	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	if rep := r2.ScanReport(); rep.Recovered != 1 || rep.Quarantined != 0 {
		t.Fatalf("recovery scan: %+v, want Recovered=1", rep)
	}
	if got, err := r2.Get(d); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get from fresh repo: err=%v", err)
	}
}

func TestFaultsAccessors(t *testing.T) {
	r := openFaultRepo(t)
	if f := r.Faults(); f.Any() {
		t.Fatalf("fresh repo has faults armed: %+v", f)
	}
	r.SetFaults(Faults{FailPuts: true, ShortReads: true})
	if f := r.Faults(); !f.FailPuts || !f.ShortReads || f.FailReads || f.CorruptReads {
		t.Fatalf("Faults() = %+v", f)
	}
	r.SetFaults(Faults{})
	if f := r.Faults(); f.Any() {
		t.Fatalf("faults not cleared: %+v", f)
	}
}

// TestFaultsOnDiskCorruption is the no-seam baseline the chaos
// corruptblob recipe relies on: real on-disk byte flips are caught the
// same way.
func TestFaultsOnDiskCorruption(t *testing.T) {
	r := openFaultRepo(t)
	data := []byte("real on-disk corruption")
	d, _, err := r.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := BlobPath(r.Dir(), d)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read blob file: %v", err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write corrupted blob: %v", err)
	}
	if _, err := r.Get(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of corrupted file: %v, want ErrCorrupt", err)
	}
	if s := r.Stats(); s.Quarantined != 1 {
		t.Fatalf("stats: %+v, want Quarantined=1", s)
	}
}
