package repo

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestTombstoneBlocksPut(t *testing.T) {
	r, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("doomed blob")
	d, _, err := r.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Tombstone(d, time.Hour); err != nil {
		t.Fatalf("Tombstone: %v", err)
	}
	if err := r.Delete(d); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !r.HasTombstone(d) {
		t.Fatal("tombstone not visible")
	}
	if _, _, err := r.Put(data); !errors.Is(err, ErrTombstoned) {
		t.Fatalf("Put after tombstone: err = %v, want ErrTombstoned", err)
	}
	// A tombstoned put is a policy refusal, not an I/O failure.
	if got := r.Stats().WriteErrors; got != 0 {
		t.Fatalf("WriteErrors = %d after tombstoned put, want 0", got)
	}
	if err := r.ClearTombstone(d); err != nil {
		t.Fatalf("ClearTombstone: %v", err)
	}
	if _, _, err := r.Put(data); err != nil {
		t.Fatalf("Put after clear: %v", err)
	}
}

func TestTombstonePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persistent tombstone")
	d := DigestOf(data)
	if err := r.Tombstone(d, time.Hour); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.HasTombstone(d) {
		t.Fatal("tombstone lost across Open")
	}
	if r2.ScanReport().Tombstones != 1 {
		t.Fatalf("scan tombstones = %d, want 1", r2.ScanReport().Tombstones)
	}
	if _, _, err := r2.Put(data); !errors.Is(err, ErrTombstoned) {
		t.Fatalf("Put after reopen: err = %v, want ErrTombstoned", err)
	}
	ts := r2.Tombstones()
	if len(ts) != 1 || ts[0].Digest != d {
		t.Fatalf("Tombstones() = %+v, want [%s]", ts, d.Short())
	}
}

func TestTombstoneExpiry(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("short-lived tombstone")
	d := DigestOf(data)
	if err := r.Tombstone(d, time.Second); err != nil {
		t.Fatal(err)
	}
	// Backdate the record on disk and in memory: expiry is whole unix
	// seconds, so a real wait would make the test slow.
	if err := os.WriteFile(r.tombstonePath(d), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	r.tombs[d] = 1
	r.mu.Unlock()

	if r.HasTombstone(d) {
		t.Fatal("expired tombstone still blocks")
	}
	if _, _, err := r.Put(data); err != nil {
		t.Fatalf("Put after expiry: %v", err)
	}
	n, err := r.ExpireTombstones()
	if err != nil || n != 1 {
		t.Fatalf("ExpireTombstones = %d, %v; want 1, nil", n, err)
	}
	if _, err := os.Stat(r.tombstonePath(d)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tombstone file survived sweep: %v", err)
	}

	// An expired record on disk must not resurrect the block at Open.
	if err := os.WriteFile(filepath.Join(dir, tombstoneDir, d.String()+tombstoneExt), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.HasTombstone(d) {
		t.Fatal("expired tombstone reloaded as live")
	}
}

func TestTombstoneReadOnly(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := DigestOf([]byte("ro"))
	if err := r.Tombstone(d, time.Hour); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ro.HasTombstone(d) {
		t.Fatal("read-only open lost tombstone")
	}
	if err := ro.Tombstone(d, time.Hour); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Tombstone on read-only: %v", err)
	}
	if err := ro.ClearTombstone(d); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ClearTombstone on read-only: %v", err)
	}
	if _, err := ro.ExpireTombstones(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ExpireTombstones on read-only: %v", err)
	}
}
