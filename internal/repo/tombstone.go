package repo

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Tombstones make deletes sticky in a replicated fleet. A lone
// Delete only removes local bytes: read-repair or a rebalance pass on
// another node still holds the blob and would happily copy it back.
// DELETE therefore also records a tombstone — a tiny file next to the
// blob shards — and PutDigest refuses tombstoned digests until the
// tombstone expires or an explicit user write clears it. The TTL
// bounds how long a delete must be remembered: once every replica has
// observed it (rebalance propagates tombstones fleet-wide), the
// record is pure debris and a housekeeping sweep reclaims it.
//
// Layout: <dir>/tombstones/<digest>.ts, payload the decimal unix
// expiry time in seconds. Writes go through the same temp → rename
// sequence as blobs so a crash never leaves a half-written record.

const (
	tombstoneDir = "tombstones"
	tombstoneExt = ".ts"
)

// DefaultTombstoneTTL is how long a delete is remembered when the
// caller does not choose: long enough for every rebalance/repair pass
// to observe it, short enough that the digest is reusable next day.
const DefaultTombstoneTTL = 24 * time.Hour

// ErrTombstoned reports a Put refused because the digest was recently
// deleted. Callers that act on explicit user intent clear the
// tombstone first; automated copiers (read-repair, rebalance) treat
// it as "stay dead".
var ErrTombstoned = errors.New("repo: digest tombstoned")

// TombstoneInfo describes one live tombstone.
type TombstoneInfo struct {
	Digest Digest `json:"digest"`
	// Expires is the unix time (seconds) after which the tombstone no
	// longer blocks writes.
	Expires int64 `json:"expires"`
}

func (r *Repo) tombstonePath(d Digest) string {
	return filepath.Join(r.dir, tombstoneDir, d.String()+tombstoneExt)
}

// loadTombstones indexes the tombstone directory during Open,
// dropping expired or malformed records (when writable).
func (r *Repo) loadTombstones() {
	ents, err := os.ReadDir(filepath.Join(r.dir, tombstoneDir))
	if err != nil {
		return
	}
	now := time.Now().Unix()
	for _, e := range ents {
		name, ok := strings.CutSuffix(e.Name(), tombstoneExt)
		full := filepath.Join(r.dir, tombstoneDir, e.Name())
		if !ok {
			continue
		}
		d, derr := ParseDigest(name)
		raw, rerr := os.ReadFile(full)
		exp, perr := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
		if derr != nil || rerr != nil || perr != nil || exp <= now {
			if !r.ro {
				_ = os.Remove(full)
			}
			continue
		}
		r.tombs[d] = exp
		r.scan.Tombstones++
	}
}

// Tombstone records that a digest was deleted and must not be
// re-admitted by automated copies until the TTL passes. ttl <= 0
// selects DefaultTombstoneTTL. Tombstoning a digest that is still
// stored is allowed — the caller deletes the blob afterwards, and
// ordering it this way closes the window where a concurrent repair
// could re-persist the blob between the delete and the tombstone.
func (r *Repo) Tombstone(d Digest, ttl time.Duration) error {
	if r.ro {
		return ErrReadOnly
	}
	if ttl <= 0 {
		ttl = DefaultTombstoneTTL
	}
	exp := time.Now().Add(ttl).Unix()
	final := r.tombstonePath(d)
	tmp, err := os.CreateTemp(filepath.Join(r.dir, tmpDir), d.Short()+".ts.*")
	if err != nil {
		return fmt.Errorf("repo: tombstone %s: %w", d.Short(), err)
	}
	_, err = fmt.Fprintf(tmp, "%d\n", exp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), final)
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("repo: tombstone %s: %w", d.Short(), err)
	}
	syncDir(filepath.Dir(final))

	r.mu.Lock()
	r.tombs[d] = exp
	r.mu.Unlock()
	return nil
}

// HasTombstone reports whether an unexpired tombstone blocks the
// digest. Expired records stop blocking immediately; their files are
// reclaimed by ExpireTombstones.
func (r *Repo) HasTombstone(d Digest) bool {
	r.mu.RLock()
	exp, ok := r.tombs[d]
	r.mu.RUnlock()
	return ok && exp > time.Now().Unix()
}

// ClearTombstone removes a digest's tombstone, if any. It expresses
// explicit user intent ("store this again"), so it is the one path
// allowed to shorten a tombstone's life.
func (r *Repo) ClearTombstone(d Digest) error {
	if r.ro {
		return ErrReadOnly
	}
	r.mu.Lock()
	_, ok := r.tombs[d]
	delete(r.tombs, d)
	r.mu.Unlock()
	if !ok {
		return nil
	}
	if err := os.Remove(r.tombstonePath(d)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("repo: clear tombstone %s: %w", d.Short(), err)
	}
	return nil
}

// Tombstones lists live (unexpired) tombstones sorted by digest.
func (r *Repo) Tombstones() []TombstoneInfo {
	now := time.Now().Unix()
	r.mu.RLock()
	out := make([]TombstoneInfo, 0, len(r.tombs))
	for d, exp := range r.tombs {
		if exp > now {
			out = append(out, TombstoneInfo{Digest: d, Expires: exp})
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool {
		return bytes.Compare(out[a].Digest[:], out[b].Digest[:]) < 0
	})
	return out
}

// ExpireTombstones drops every expired tombstone record and its file,
// returning how many were reclaimed. The housekeeping sweep calls
// this periodically; correctness does not depend on it (HasTombstone
// ignores expired records either way).
func (r *Repo) ExpireTombstones() (int, error) {
	if r.ro {
		return 0, ErrReadOnly
	}
	now := time.Now().Unix()
	var dead []Digest
	r.mu.Lock()
	for d, exp := range r.tombs {
		if exp <= now {
			delete(r.tombs, d)
			dead = append(dead, d)
		}
	}
	r.mu.Unlock()
	for _, d := range dead {
		_ = os.Remove(r.tombstonePath(d))
	}
	return len(dead), nil
}
