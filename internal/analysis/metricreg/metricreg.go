// Package metricreg flags metric registration outside init-time code
// paths.
//
// Registering the same name on a metrics.Registry twice panics by
// design — a duplicate is a wiring bug — which makes *where* the
// registration happens load-bearing: a Counter/Gauge/Histogram call
// on a request or job path works exactly once and panics the process
// on the second request. The invariant: registration methods run only
// from init functions or from constructor-shaped functions (New*/new*,
// Register*/register*), where they execute once per registry by
// construction. Handlers observe pre-registered collectors; they never
// mint them.
package metricreg

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// registration lists the metrics.Registry methods that create or hook
// collectors (and so panic on a duplicate).
var registration = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"CounterFunc":  true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"GaugeVec":     true,
	"Histogram":    true,
	"HistogramVec": true,
	"OnCollect":    true,
}

// Analyzer is the metricreg analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metricreg",
	Doc:  "metric registration outside init or a New*/Register* constructor; a duplicate registration panics, so collectors are minted once at wiring time and only observed afterwards",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Tests build throwaway registries inline; the invariant guards
		// production wiring.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || allowed(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := pass.TypesInfo.Selections[sel]
				if selection == nil || selection.Kind() != types.MethodVal {
					return true
				}
				named := namedRecv(selection.Recv())
				if named == nil || named.Obj().Pkg() == nil ||
					named.Obj().Pkg().Path() != "repro/internal/metrics" || named.Obj().Name() != "Registry" {
					return true
				}
				m := selection.Obj().Name()
				if !registration[m] {
					return true
				}
				pass.Reportf(call.Pos(),
					"metrics.Registry.%s called in %s: registration panics on duplicates, so it belongs in init or a New*/Register* constructor",
					m, fd.Name.Name)
				return true
			})
		}
	}
	return nil, nil
}

// allowed reports whether a function name is an init-time wiring shape.
func allowed(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "Register") || strings.HasPrefix(name, "register")
}

// namedRecv unwraps a method receiver type to its named type.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
