package metricreg_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricreg"
)

func TestMetricreg(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), metricreg.Analyzer, "metricreg")
}
