// Package poolescape enforces the pooled devirt router ownership
// contract: nothing reachable from a *devirt.Router — the router
// itself, the Configs() slice, the configs inside it — may be used
// after Release returns the router to its shape pool, or escape a
// function that releases it. Release resets the router and hands it
// to the next decode; a retained alias silently reads (or worse,
// writes) another task's routing state.
//
// The analysis is function-local and lexical:
//
//   - a use of the router, or of a reference derived from it, after a
//     Release statement in the same block is a violation;
//   - with a deferred Release, returning the router or a derived
//     reference is a violation (the caller receives memory the defer
//     is about to recycle);
//   - storing a derived reference into a field, map or slice element
//     of anything else while the function releases the router is a
//     violation (the reference outlives the frame).
//
// "Derived" follows reference-typed values only: cfgs := rt.Configs()
// and cfg := cfgs[i] alias pooled memory; n := cfg.N copies a scalar
// and is always safe. Copying values out before Release — what
// controller.DecodeVBS does for the decoded cache — is the sanctioned
// pattern and does not trip the analyzer.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the poolescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "memory reachable from a pooled devirt router retained past Release (Configs ownership contract)",
	Run:  run,
}

const devirtPath = "repro/internal/devirt"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false // checkFunc covers nested literals lexically
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc analyzes one function body (nested function literals
// included: their execution may outlive a Release just the same).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	routers := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := objectOf(pass, id); obj != nil && isRouterPtr(obj.Type()) {
			routers[obj] = true
		}
		return true
	})
	if len(routers) == 0 {
		return
	}

	// derived maps reference-typed locals to the router they alias.
	// Two passes reach derived-of-derived chains regardless of walk
	// order quirks.
	derived := map[types.Object]types.Object{}
	for i := 0; i < 2; i++ {
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for j, rhs := range s.Rhs {
					root := aliasRoot(pass, routers, derived, rhs)
					if root == nil {
						continue
					}
					if id, ok := s.Lhs[j].(*ast.Ident); ok {
						if obj := objectOf(pass, id); obj != nil && !routers[obj] {
							derived[obj] = root
						}
					}
				}
			case *ast.RangeStmt:
				// for _, cfg := range rt.Configs(): the value variable
				// aliases pooled element storage when it is a reference.
				root := aliasRoot(pass, routers, derived, s.X)
				if root == nil {
					return true
				}
				if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := objectOf(pass, id); obj != nil && !routers[obj] && isRefType(obj.Type()) {
						derived[obj] = root
					}
				}
			}
			return true
		})
	}

	aliases := func(e ast.Expr) types.Object { return aliasRoot(pass, routers, derived, e) }

	// Release sites: plain statements bound their block tail; deferred
	// ones cover every return.
	type release struct {
		root     types.Object
		stmtEnd  token.Pos
		blockEnd token.Pos
	}
	var plain []release
	deferred := map[types.Object]bool{}
	var walkBlocks func(n ast.Node)
	walkBlocks = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.BlockStmt:
				for _, st := range s.List {
					es, ok := st.(*ast.ExprStmt)
					if !ok {
						continue
					}
					if root := releaseTarget(pass, aliases, es.X); root != nil {
						plain = append(plain, release{root: root, stmtEnd: st.End(), blockEnd: s.End()})
					}
				}
			case *ast.DeferStmt:
				if root := releaseTarget(pass, aliases, s.Call); root != nil {
					deferred[root] = true
				}
			}
			return true
		})
	}
	walkBlocks(body)

	reportUse := func(id *ast.Ident, obj types.Object) {
		pass.Reportf(id.Pos(),
			"%s is reachable from pooled router %s, already Released; copy what you need before Release (Configs ownership contract)",
			id.Name, rootName(routers, derived, obj))
	}

	// Rule 1: use after a plain Release, within its block's remainder.
	for _, rel := range plain {
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := objectOf(pass, id)
			if obj == nil {
				return true
			}
			if obj != rel.root && derived[obj] != rel.root {
				return true
			}
			if id.Pos() > rel.stmtEnd && id.Pos() < rel.blockEnd {
				reportUse(id, obj)
			}
			return true
		})
	}

	// Rule 2: returning pooled memory while a deferred Release is
	// armed hands the caller a router the defer immediately resets.
	if len(deferred) > 0 {
		ast.Inspect(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					obj := objectOf(pass, id)
					if obj == nil {
						return true
					}
					root := obj
					if r, ok := derived[obj]; ok {
						root = r
					}
					if deferred[root] && (routers[obj] || derived[obj] != nil) {
						pass.Reportf(id.Pos(),
							"return of %s leaks memory reachable from pooled router %s past its deferred Release; copy it first (Configs ownership contract)",
							id.Name, rootName(routers, derived, obj))
					}
					return true
				})
			}
			return true
		})
	}

	// Rule 3: storing a derived reference into a field, element or
	// dereference lets it outlive the frame of a function that
	// releases the router.
	released := map[types.Object]bool{}
	for _, rel := range plain {
		released[rel.root] = true
	}
	for r := range deferred {
		released[r] = true
	}
	if len(released) > 0 {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, lhs := range as.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				default:
					continue
				}
				if root := aliases(as.Rhs[j]); root != nil && released[root] {
					pass.Reportf(as.Rhs[j].Pos(),
						"stores memory reachable from pooled router %s, which this function Releases; store a copy instead (Configs ownership contract)",
						root.Name())
				}
			}
			return true
		})
	}
}

// releaseTarget returns the router object a rt.Release() call
// releases, or nil if the expression is not one.
func releaseTarget(pass *analysis.Pass, aliases func(ast.Expr) types.Object, e ast.Expr) types.Object {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal || !isRouterPtr(selection.Recv()) {
		return nil
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return objectOf(pass, id)
	}
	return aliases(sel.X)
}

// aliasRoot reports which router (if any) the expression aliases,
// following only reference-typed results: scalar copies are safe.
func aliasRoot(pass *analysis.Pass, routers map[types.Object]bool, derived map[types.Object]types.Object, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return aliasRoot(pass, routers, derived, x.X)
	case *ast.Ident:
		obj := objectOf(pass, x)
		if obj == nil {
			return nil
		}
		if routers[obj] {
			return obj
		}
		return derived[obj]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return aliasRoot(pass, routers, derived, x.X)
		}
	case *ast.IndexExpr:
		if !isRefType(pass.TypeOf(x)) {
			return nil
		}
		return aliasRoot(pass, routers, derived, x.X)
	case *ast.SelectorExpr:
		if !isRefType(pass.TypeOf(x)) {
			return nil
		}
		return aliasRoot(pass, routers, derived, x.X)
	case *ast.CallExpr:
		// rt.Configs() (or any method on the router returning a
		// reference) aliases the router's pooled storage.
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal || !isRouterPtr(selection.Recv()) {
			return nil
		}
		if !isRefType(pass.TypeOf(x)) {
			return nil
		}
		return aliasRoot(pass, routers, derived, sel.X)
	}
	return nil
}

// rootName names the router a use traces back to, for diagnostics.
func rootName(routers map[types.Object]bool, derived map[types.Object]types.Object, obj types.Object) string {
	if routers[obj] {
		return obj.Name()
	}
	if r, ok := derived[obj]; ok && r != nil {
		return r.Name()
	}
	return obj.Name()
}

// objectOf resolves an identifier to its object (use or definition).
func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// isRouterPtr reports whether t is *devirt.Router.
func isRouterPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == devirtPath && n.Obj().Name() == "Router"
}

// isRefType reports whether values of t alias underlying storage
// (pointers, slices, maps, channels, interfaces, functions).
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}
