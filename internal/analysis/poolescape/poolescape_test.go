package poolescape_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolescape"
)

func TestPoolescape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolescape.Analyzer, "poolescape")
}
