// Fixture for the errwrap analyzer: fmt.Errorf must wrap error
// operands with %w, never flatten them with %v/%s/%q.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

type opErr struct{ op string }

func (e *opErr) Error() string { return e.op }

func flattens(err, err2 error) {
	_ = fmt.Errorf("load: %v", err)                                // want `formatted with %v`
	_ = fmt.Errorf("load: %s", err)                                // want `formatted with %s`
	_ = fmt.Errorf("load: %q", err)                                // want `formatted with %q`
	_ = fmt.Errorf("load: %+v", err)                               // want `formatted with %v`
	_ = fmt.Errorf("task %d: %v", 3, err)                          // want `formatted with %v`
	_ = fmt.Errorf("%[2]v after %[1]d", 3, err)                    // want `formatted with %v`
	_ = fmt.Errorf("%*d then %v", 8, 3, err)                       // want `formatted with %v`
	_ = fmt.Errorf("restore: %w: %v / %v", errSentinel, err, err2) // want `formatted with %v` `formatted with %v`
}

func flattensConcrete(e *opErr) {
	_ = fmt.Errorf("op: %v", e) // want `formatted with %v`
}

func wraps(err, err2 error, n int) {
	_ = fmt.Errorf("load: %w", err)
	_ = fmt.Errorf("restore: %w: %w / %w", errSentinel, err, err2)
	_ = fmt.Errorf("count: %v of %d", n, n)
	_ = fmt.Errorf("pct: %d%%", n)
	s := "detail"
	_ = fmt.Errorf("detail: %s", s)
	//vbslint:ignore errwrap rendered into a human-facing message, never matched
	_ = fmt.Errorf("report: %v", err)
	args := []any{err}
	_ = fmt.Errorf("spread: %v", args...)
}
