// Negative fixture for the ctxclient analyzer: this package path is
// NOT in ctxclient.Packages, so the same context-less calls that fire
// in the scoped fixture must be silent here (command-line tools and
// examples are allowed Background-context convenience wrappers).
package ctxclient_unscoped

import "repro/internal/server"

func allowedOffRequestPath(cl *server.Client) {
	_, _ = cl.Tasks()
	_ = cl.Unload(1)
	_, _ = cl.Stats()
}
