// Fixture for the atomicfaults analyzer: sync/atomic-typed fields may
// only be touched through their atomic methods.
package atomicfaults

import "sync/atomic"

type gauges struct {
	hits  atomic.Uint64
	state atomic.Pointer[gauges]
	flag  atomic.Bool
}

func good(g *gauges) uint64 {
	g.hits.Add(1)
	g.flag.Store(true)
	if p := g.state.Load(); p != nil {
		_ = p
	}
	load := g.hits.Load
	_ = load()
	return g.hits.Load()
}

func bad(g *gauges) {
	c := g.hits // want `atomic-only`
	_ = c
	g.state = atomic.Pointer[gauges]{} // want `atomic-only`
	p := &g.flag                       // want `atomic-only`
	p.Store(false)
	//vbslint:ignore atomicfaults exercising the suppression path
	_ = g.flag
}
