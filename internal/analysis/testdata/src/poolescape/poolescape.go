// Fixture for the poolescape analyzer: nothing reachable from a
// pooled *devirt.Router may be used after Release or escape a
// function that releases it.
package poolescape

import (
	"repro/internal/arch"
	"repro/internal/devirt"
)

func useAfterRelease(reg devirt.Region) int {
	rt, err := devirt.AcquireRouter(reg, false, false)
	if err != nil {
		return 0
	}
	cfgs := rt.Configs()
	rt.Release()
	return len(cfgs) // want `reachable from pooled router rt`
}

func routerAfterRelease(reg devirt.Region) {
	rt, err := devirt.AcquireRouter(reg, false, false)
	if err != nil {
		return
	}
	rt.Release()
	rt.Reset() // want `reachable from pooled router rt`
}

func returnsPooled(reg devirt.Region) []*arch.MacroConfig {
	rt, err := devirt.AcquireRouter(reg, false, false)
	if err != nil {
		return nil
	}
	defer rt.Release()
	return rt.Configs() // want `return of rt leaks`
}

type cache struct {
	cfgs []*arch.MacroConfig
}

func stores(c *cache, reg devirt.Region) {
	rt, err := devirt.AcquireRouter(reg, false, false)
	if err != nil {
		return
	}
	cfgs := rt.Configs()
	c.cfgs = cfgs // want `stores memory reachable from pooled router rt`
	rt.Release()
}

// earlyRelease releases on an error path inside a nested block; uses
// after that block belong to the non-released path and are fine.
func earlyRelease(reg devirt.Region) int {
	rt, err := devirt.AcquireRouter(reg, false, false)
	if err != nil {
		return 0
	}
	if reg.CW == 0 {
		rt.Release()
		return 0
	}
	n := len(rt.Configs())
	rt.Release()
	return n
}

// copiesOut is the sanctioned pattern: copy config values out before
// the deferred Release fires; the copies own their storage.
func copiesOut(reg devirt.Region) []arch.MacroConfig {
	rt, err := devirt.AcquireRouter(reg, false, false)
	if err != nil {
		return nil
	}
	defer rt.Release()
	var out []arch.MacroConfig
	for _, cfg := range rt.Configs() {
		out = append(out, *cfg)
	}
	return out
}

// acquires transfers ownership: no Release here, so the caller is
// responsible and returning the router is fine.
func acquires(reg devirt.Region) (*devirt.Router, []*arch.MacroConfig, error) {
	rt, err := devirt.AcquireRouter(reg, false, false)
	if err != nil {
		return nil, nil, err
	}
	return rt, rt.Configs(), nil
}
