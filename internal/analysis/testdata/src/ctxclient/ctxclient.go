// Fixture for the ctxclient analyzer: this package path is appended
// to ctxclient.Packages by the test, so context-less server.Client
// calls here are on the request path.
package ctxclient

import (
	"context"

	"repro/internal/server"
)

func bad(cl *server.Client) {
	_, _ = cl.Tasks()        // want `context-less server\.Client\.Tasks`
	_ = cl.Unload(1)         // want `context-less server\.Client\.Unload`
	_, _ = cl.Stats()        // want `context-less server\.Client\.Stats`
	_ = cl.DeleteVBS("abcd") // want `context-less server\.Client\.DeleteVBS`
}

func good(ctx context.Context, cl *server.Client) error {
	if _, err := cl.TasksCtx(ctx); err != nil {
		return err
	}
	if err := cl.UnloadCtx(ctx, 1); err != nil {
		return err
	}
	_ = cl.Base()
	//vbslint:ignore ctxclient boot-time probe; no caller context exists yet
	_, _ = cl.Fabrics()
	return cl.Health(ctx)
}
