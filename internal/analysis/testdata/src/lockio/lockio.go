// Fixture for the lockio analyzer: no blocking HTTP or disk call may
// run while a sync mutex is held.
package lockio

import (
	"context"
	"net/http"
	"os"
	"sync"

	"repro/internal/repo"
	"repro/internal/server"
	"repro/internal/transport"
)

type svc struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	val string
}

func (s *svc) httpUnderLock() {
	s.mu.Lock()
	_, _ = http.Get("http://example.invalid/") // want `mutex s\.mu held across blocking call to net/http\.Get`
	s.mu.Unlock()
}

func (s *svc) diskUnderDeferredUnlock() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile("state.json") // want `mutex s\.mu held across blocking call to os\.ReadFile`
}

func (s *svc) diskUnderReadLock() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return os.Remove("state.json") // want `mutex s\.rw held across blocking call to os\.Remove`
}

func (s *svc) clientUnderLock(ctx context.Context, cl *server.Client) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cl.Health(ctx) // want `mutex s\.mu held across blocking call to server\.Client\.Health \(HTTP\)`
}

func (s *svc) repoUnderLock(r *repo.Repo) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.Get(repo.Digest{}) // want `mutex s\.mu held across blocking call to repo\.Repo\.Get \(disk\)`
}

func (s *svc) streamSendUnderLock(ctx context.Context, st *transport.Stream) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.Send(ctx, nil, false, nil) // want `mutex s\.mu held across blocking call to transport\.Stream\.Send \(stream\)`
}

func (s *svc) streamCallUnderLock(ctx context.Context, st *transport.Stream) ([]byte, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return st.Call(ctx, nil, false) // want `mutex s\.rw held across blocking call to transport\.Stream\.Call \(stream\)`
}

func (s *svc) dialUnderLock(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = transport.Dial(ctx, "http://example.invalid") // want `mutex s\.mu held across blocking call to transport\.Dial \(network\)`
}

// connectedUnderLock: Stream.Connected only reads stream state, no
// network — fine under a lock.
func (s *svc) connectedUnderLock(st *transport.Stream) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.Connected()
}

// copyUnderLock is the sanctioned pattern: snapshot under the lock,
// do the I/O after unlocking.
func (s *svc) copyUnderLock() (string, error) {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	resp, err := http.Get("http://example.invalid/")
	if err != nil {
		return "", err
	}
	resp.Body.Close()
	return v, nil
}

// pureUnderLock calls only allowlisted os functions under the lock.
func (s *svc) pureUnderLock() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Getenv("HOME") + s.val
}

// indexUnderLock: index-only repo.Repo accessors do not touch disk.
func (s *svc) indexUnderLock(r *repo.Repo) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.Has(repo.Digest{})
}

// closureUnderLock builds a closure under the lock but runs it after;
// the closure body is not charged to the section.
func (s *svc) closureUnderLock() {
	s.mu.Lock()
	fetch := func() { _, _ = http.Get("http://example.invalid/") }
	s.mu.Unlock()
	fetch()
}
