// Fixture for the metricreg analyzer: metric registration is legal in
// init and New*/new*/Register*/register* functions (where it runs once
// per registry) and flagged everywhere else (where a second execution
// panics on the duplicate name).
package metricreg

import "repro/internal/metrics"

type subsystem struct {
	reg  *metrics.Registry
	hits *metrics.Counter
}

var pkgReg = metrics.NewRegistry()

// Package-level var initializers run at init time and stay legal.
var bootCounter = pkgReg.Counter("vbs_fixture_boot_total", "init-time")

func init() {
	pkgReg.Gauge("vbs_fixture_up", "init-time")
}

func New() *subsystem {
	s := &subsystem{reg: metrics.NewRegistry()}
	s.hits = s.reg.Counter("vbs_fixture_hits_total", "constructor-time")
	s.reg.OnCollect(func() {})
	return s
}

func newQuiet(reg *metrics.Registry) {
	reg.CounterVec("vbs_fixture_ops_total", "constructor-time", "op")
}

func RegisterExtra(reg *metrics.Registry) {
	reg.HistogramVec("vbs_fixture_lat_seconds", "constructor-time", nil, "op")
}

func (s *subsystem) handleRequest() {
	s.hits.Inc()                                                    // observing is fine anywhere
	s.reg.Counter("vbs_fixture_lazy_total", "per-request")          // want `metrics\.Registry\.Counter called in handleRequest`
	s.reg.GaugeFunc("vbs_fixture_lazy", "per-request", nil)         // want `metrics\.Registry\.GaugeFunc called in handleRequest`
	s.reg.Histogram("vbs_fixture_lazy_seconds", "per-request", nil) // want `metrics\.Registry\.Histogram called in handleRequest`
	s.reg.OnCollect(func() {})                                      // want `metrics\.Registry\.OnCollect called in handleRequest`
}

func sweep(reg *metrics.Registry) {
	func() {
		reg.Gauge("vbs_fixture_closure", "closures inherit the enclosing decl") // want `metrics\.Registry\.Gauge called in sweep`
	}()
}
