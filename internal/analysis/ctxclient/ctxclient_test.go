package ctxclient_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxclient"
)

func TestCtxclient(t *testing.T) {
	// The scoped fixture plays a request-path package; the unscoped one
	// stays off the list and must be silent.
	ctxclient.Packages = append(ctxclient.Packages, "ctxclient")
	defer func() { ctxclient.Packages = ctxclient.Packages[:len(ctxclient.Packages)-1] }()
	analysistest.Run(t, analysistest.TestData(t), ctxclient.Analyzer, "ctxclient", "ctxclient_unscoped")
}
