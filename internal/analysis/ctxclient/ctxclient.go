// Package ctxclient flags calls to context-less server.Client
// convenience wrappers from request-path packages.
//
// Every server.Client method has a *Ctx variant threading a
// context.Context into the underlying HTTP exchange; the context-less
// names exist for command-line tools and examples where Background is
// genuinely right. On the data plane — the gateway's routing and
// replication fan-outs, the chaos harness's recipe and condition
// probes, the daemon's own handlers — calling the context-less form
// drops cancellation: a client that hung up keeps consuming a node,
// a recipe deadline stops propagating, shutdown stalls behind dead
// peers. Tests count too: a hung exchange should die with its test's
// deadline (use t.Context()).
package ctxclient

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Packages lists the import-path prefixes treated as request-path
// code. A package is in scope when its path (bracketed test-variant
// suffixes stripped) equals a prefix, lives under it, or is its
// external test package. Tests may append fixture paths.
var Packages = []string{
	"repro/internal/cluster",
	"repro/internal/chaos",
	"repro/internal/server",
}

// Analyzer is the ctxclient analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxclient",
	Doc:  "context-less server.Client call on the request path; use the *Ctx variant and plumb the caller's context",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			named := namedRecv(selection.Recv())
			if named == nil || named.Obj().Pkg() == nil ||
				named.Obj().Pkg().Path() != "repro/internal/server" || named.Obj().Name() != "Client" {
				return true
			}
			m := selection.Obj().Name()
			if strings.HasSuffix(m, "Ctx") || !hasMethod(named, m+"Ctx") {
				return true
			}
			pass.Reportf(call.Pos(),
				"context-less server.Client.%s call in request-path package; use %sCtx and plumb the caller's context",
				m, m)
			return true
		})
	}
	return nil, nil
}

// inScope reports whether a package path is request-path code.
func inScope(path string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	for _, p := range Packages {
		if path == p || strings.HasPrefix(path, p+"/") || path == p+"_test" {
			return true
		}
	}
	return false
}

// namedRecv unwraps a method receiver type to its named type.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// hasMethod reports whether *named's method set contains name.
func hasMethod(named *types.Named, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
