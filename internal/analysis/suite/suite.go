// Package suite enumerates the vbslint analyzers. cmd/vbslint and the
// smoke tests import it so the invariant set is defined exactly once,
// in-repo, under version control.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicfaults"
	"repro/internal/analysis/ctxclient"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/lockio"
	"repro/internal/analysis/metricreg"
	"repro/internal/analysis/poolescape"
)

// All returns every vbslint analyzer, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfaults.Analyzer,
		ctxclient.Analyzer,
		errwrap.Analyzer,
		lockio.Analyzer,
		metricreg.Analyzer,
		poolescape.Analyzer,
	}
}
