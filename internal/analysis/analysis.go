// Package analysis is the vocabulary of vbslint, the repository's
// static-analysis suite: Analyzer, Pass and Diagnostic, mirroring the
// golang.org/x/tools/go/analysis API closely enough that an analyzer
// written here ports to the upstream framework (or an upstream
// analyzer ports here) mechanically. The repository vendors no
// third-party modules, so the framework itself — this package plus
// the loader in internal/analysis/driver and the golden-file harness
// in internal/analysis/analysistest — is implemented on the standard
// library's go/ast, go/types and go/importer alone.
//
// Each analyzer encodes one invariant this codebase has shipped a bug
// against, or documents only in prose:
//
//   - errwrap: an error formatted into fmt.Errorf with %v/%s/%q hides
//     it from errors.Is/errors.As (the store.ErrDisk %v-wrap bug).
//   - ctxclient: context-less server.Client wrappers called from
//     request-path packages drop cancellation on the data plane.
//   - poolescape: memory reachable from a pooled devirt router must
//     not be retained past Release (the Configs ownership contract).
//   - lockio: a mutex held across an HTTP or disk call serializes the
//     fleet behind one slow peer.
//   - atomicfaults: a sync/atomic-typed field read or written without
//     its atomic methods (e.g. the repo.Faults arming pointer) races.
//   - metricreg: metrics.Registry registration panics on duplicate
//     names by design, so it must run from init or a New*/Register*
//     constructor — never on a request or job path.
//
// See cmd/vbslint for the multichecker that runs the suite, and
// docs/ARCHITECTURE.md ("Static analysis") for the invariant table
// and how to add an analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis function and its properties.
type Analyzer struct {
	// Name identifies the analyzer in findings, ignore directives
	// (//vbslint:ignore <name>) and documentation. By convention it is
	// the package name.
	Name string

	// Doc is the one-paragraph description printed by vbslint -help,
	// stating the invariant the analyzer enforces.
	Doc string

	// Run applies the analyzer to a single type-checked package,
	// reporting findings through pass.Report. The returned value is
	// unused today; it keeps the upstream signature so analyzers port
	// without edits.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps token positions to file locations for every file in
	// the package (and every imported package).
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for the package's syntax: at
	// least Types, Defs, Uses, Selections and Implicits are populated.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver attaches the analyzer
	// name and applies //vbslint:ignore suppression.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// A Diagnostic is one finding: a position inside the package under
// analysis and a message stating the violated invariant.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
