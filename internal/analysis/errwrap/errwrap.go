// Package errwrap flags fmt.Errorf calls that format an error
// argument with %v, %s or %q instead of wrapping it with %w.
//
// Formatting flattens the error to text: errors.Is and errors.As can
// no longer see the sentinel inside, so callers comparing against
// store.ErrDisk, repo.ErrCorrupt, context.Canceled and friends
// silently stop matching. This repository shipped exactly that bug —
// the disk-tier wrap of store.ErrDisk used %v until PR 6, blinding
// the gateway's errors.Is(err, store.ErrDisk) failover check.
//
// Since Go 1.20 fmt.Errorf accepts multiple %w verbs, so even
// double-fault messages ("%w: %v / %v") have a wrapping form.
// Deliberate flattening (an error rendered into a human-facing
// message and never matched) is suppressed with
// //vbslint:ignore errwrap <reason>.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errwrap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf formats an error with %v/%s/%q; use %w so errors.Is/errors.As can unwrap it",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(pass, call) || len(call.Args) < 2 || call.Ellipsis.IsValid() {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			for _, v := range parseVerbs(constant.StringVal(tv.Value)) {
				if v.letter != 'v' && v.letter != 's' && v.letter != 'q' {
					continue
				}
				argIdx := v.arg + 1 // args[0] is the format string
				if argIdx < 1 || argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				t := pass.TypeOf(arg)
				if t == nil || !types.Implements(t, errorIface) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"error argument formatted with %%%c in fmt.Errorf; use %%w so errors.Is/errors.As can unwrap it",
					v.letter)
			}
			return true
		})
	}
	return nil, nil
}

// isFmtErrorf reports whether the call's callee is fmt.Errorf.
func isFmtErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf"
}

// verb is one conversion in a format string and the operand index it
// consumes (0-based, counting operands only).
type verb struct {
	letter byte
	arg    int
}

// parseVerbs scans a fmt format string, tracking the operand index
// through flags, *-widths and explicit [n] argument indexes.
func parseVerbs(format string) []verb {
	var out []verb
	next := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		if i < len(format) && format[i] == '*' {
			next++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				next++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i < len(format) && format[i] == '[' {
			end := strings.IndexByte(format[i:], ']')
			if end < 0 {
				break
			}
			if n, err := strconv.Atoi(format[i+1 : i+end]); err == nil {
				next = n - 1
			}
			i += end + 1
		}
		if i >= len(format) {
			break
		}
		out = append(out, verb{letter: format[i], arg: next})
		next++
		i++
	}
	return out
}
