// Package analysistest runs a vbslint analyzer over golden-file
// fixtures, checking its diagnostics against `// want` comments — the
// same contract as golang.org/x/tools/go/analysis/analysistest, built
// on the internal/analysis/driver loader.
//
// Fixtures live under testdata/src/<pkg>/ next to the test. Every
// line that must trigger a diagnostic carries a trailing comment with
// one or more quoted regular expressions:
//
//	_ = fmt.Errorf("load: %v", err) // want `formats error .* with %v`
//
// A diagnostic with no matching want, or a want with no matching
// diagnostic, fails the test. Lines without want comments are the
// negative fixtures: the analyzer must stay silent on them.
//
// Because fixtures are type-checked against this module's own export
// index, they may import repro packages (repro/internal/server,
// repro/internal/devirt, ...) and any standard-library package the
// module already depends on — so an invariant about a real API is
// tested against that API, not a mock of it.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// TestData returns the absolute path of the shared fixture root,
// internal/analysis/testdata, resolved relative to the calling test's
// working directory (the analyzer's package directory).
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	td, err := filepath.Abs(filepath.Join(wd, "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	return td
}

var (
	loaderOnce sync.Once
	loaderVal  *driver.Loader
	loaderErr  error
)

// sharedLoader builds one export index per test process, rooted at
// the module directory (found by walking up to go.mod).
func sharedLoader() (*driver.Loader, error) {
	loaderOnce.Do(func() {
		dir, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		for {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(dir)
			if parent == dir {
				loaderErr = fmt.Errorf("analysistest: no go.mod above working directory")
				return
			}
			dir = parent
		}
		loaderVal, _, loaderErr = driver.NewLoader(dir, false, "./...")
	})
	return loaderVal, loaderErr
}

// Run loads testdata/src/<pkg> for each named fixture package, runs
// the analyzer over it, and reports any mismatch between diagnostics
// and want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("fixture package %s: %v", name, err)
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, e.Name())
			}
		}
		if len(files) == 0 {
			t.Fatalf("fixture package %s: no .go files", name)
		}
		pkg, err := ld.Check(name, dir, files, nil)
		if err != nil {
			t.Fatalf("fixture package %s: %v", name, err)
		}
		findings, err := driver.Run([]*driver.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("fixture package %s: %v", name, err)
		}
		checkWants(t, pkg, findings)
	}
}

// want is one expectation parsed from a `// want` comment.
type want struct {
	pos token.Position // position of the comment
	re  *regexp.Regexp
	hit bool
}

// parseWants extracts want expectations from a fixture package.
func parseWants(t *testing.T, pkg *driver.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				for rest != "" {
					var lit string
					switch rest[0] {
					case '`':
						end := strings.IndexByte(rest[1:], '`')
						if end < 0 {
							t.Fatalf("%s: unterminated want pattern", pos)
						}
						lit = rest[1 : 1+end]
						rest = strings.TrimSpace(rest[2+end:])
					case '"':
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Fatalf("%s: bad want pattern: %v", pos, err)
						}
						unq, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern: %v", pos, err)
						}
						lit = unq
						rest = strings.TrimSpace(rest[len(q):])
					default:
						t.Fatalf("%s: want patterns must be quoted or backquoted, got %q", pos, rest)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants
}

// checkWants matches findings against wants line by line.
func checkWants(t *testing.T, pkg *driver.Package, findings []driver.Finding) {
	t.Helper()
	wants := parseWants(t, pkg)
	byLine := make(map[string][]*want)
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, w := range wants {
		k := key(w.pos.Filename, w.pos.Line)
		byLine[k] = append(byLine[k], w)
	}
	for _, f := range findings {
		matched := false
		for _, w := range byLine[key(f.Pos.Filename, f.Pos.Line)] {
			if !w.hit && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].pos.Filename != wants[j].pos.Filename {
			return wants[i].pos.Filename < wants[j].pos.Filename
		}
		return wants[i].pos.Line < wants[j].pos.Line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic matching %q", w.pos, w.re)
		}
	}
}
