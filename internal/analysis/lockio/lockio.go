// Package lockio flags blocking I/O performed while a sync.Mutex or
// sync.RWMutex is held.
//
// One slow disk or one dead peer must never stall every goroutine
// queued on a hot lock: the controller, store, repo and gateway all
// follow the copy-under-lock, I/O-outside pattern, and the ROADMAP's
// "shard the hot locks" refactor depends on it staying that way.
// Blocking calls are HTTP and filesystem operations: anything in
// net/http, net, or os (minus a small pure allowlist: Getenv and
// friends), plus this repository's own network and disk surfaces —
// server.Client methods and repo.Repo methods.
//
// The analysis is function-local and lexical: a critical section
// spans from x.Lock() (or x.RLock()) to the next x.Unlock()
// (x.RUnlock()) on the same expression in source order, or to the end
// of the function when the unlock is deferred or absent. Function
// literals are analyzed as their own functions — when a closure body
// runs is unknowable, so calls inside it are not charged to the
// enclosing section, and locks it takes are charged to it alone.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockio analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "mutex held across a blocking HTTP/disk call; copy under the lock, do I/O outside it",
	Run:  run,
}

// pureOS names os-package functions that never touch the filesystem
// or block; calling them under a lock is fine.
var pureOS = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "Getpid": true, "Getppid": true, "Getuid": true,
	"Geteuid": true, "Getgid": true, "Getegid": true, "Exit": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
	"IsPathSeparator": true, "NewSyscallError": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// lockCall describes one Lock/Unlock-family call statement.
type lockCall struct {
	key      string // source text of the mutex expression
	read     bool   // RLock/RUnlock
	unlock   bool
	deferred bool
	pos      token.Pos
}

// interval is one lexical critical section.
type interval struct {
	key        string
	read       bool
	start, end token.Pos
}

// checkFunc analyzes one function body, not descending into nested
// function literals (they are checked as their own functions).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var calls []lockCall
	walkShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if lc, ok := asLockCall(pass, s.X, false); ok {
				calls = append(calls, lc)
			}
		case *ast.DeferStmt:
			if lc, ok := asLockCall(pass, s.Call, true); ok {
				calls = append(calls, lc)
			}
		}
	})
	if len(calls) == 0 {
		return
	}

	// Pair locks with the next matching non-deferred unlock in source
	// order; a lock without one is held to the end of the function.
	var sections []interval
	type openLock struct {
		pos  token.Pos
		open bool
	}
	state := map[string]*openLock{}
	skey := func(lc lockCall) string {
		if lc.read {
			return "r:" + lc.key
		}
		return "w:" + lc.key
	}
	for _, lc := range calls {
		if lc.deferred && lc.unlock {
			continue // fires at return: the section runs to body end
		}
		k := skey(lc)
		st := state[k]
		if st == nil {
			st = &openLock{}
			state[k] = st
		}
		switch {
		case !lc.unlock:
			if st.open {
				// Re-lock while lexically open (branchy code); keep the
				// earlier start, stay open.
				continue
			}
			st.open, st.pos = true, lc.pos
		case st.open:
			sections = append(sections, interval{key: lc.key, read: lc.read, start: st.pos, end: lc.pos})
			st.open = false
		}
	}
	for k, st := range state {
		if st.open {
			read := k[0] == 'r'
			sections = append(sections, interval{key: k[2:], read: read, start: st.pos, end: body.End()})
		}
	}
	if len(sections) == 0 {
		return
	}

	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return
		}
		what := ioCall(callee)
		if what == "" {
			return
		}
		for _, sec := range sections {
			if call.Pos() > sec.start && call.Pos() < sec.end {
				pass.Reportf(call.Pos(),
					"mutex %s held across blocking call to %s; copy under the lock, do I/O after unlocking", sec.key, what)
				return
			}
		}
	})
}

// walkShallow visits every node in body except the bodies of nested
// function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// asLockCall recognizes x.Lock / x.RLock / x.Unlock / x.RUnlock where
// the method is sync's.
func asLockCall(pass *analysis.Pass, e ast.Expr, deferred bool) (lockCall, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return lockCall{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	name := sel.Sel.Name
	var read, unlock bool
	switch name {
	case "Lock":
	case "RLock":
		read = true
	case "Unlock":
		unlock = true
	case "RUnlock":
		read, unlock = true, true
	default:
		return lockCall{}, false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	return lockCall{
		key:      types.ExprString(sel.X),
		read:     read,
		unlock:   unlock,
		deferred: deferred,
		pos:      call.Pos(),
	}, true
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// ioCall classifies a callee as blocking I/O, returning a short
// description ("" when it is not).
func ioCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "net/http", "net":
		return pkg.Path() + "." + fn.Name()
	case "os":
		if pureOS[fn.Name()] {
			return ""
		}
		return "os." + fn.Name()
	case "repro/internal/transport":
		// Dial and Upgrade touch the socket directly; Stream methods
		// are classified by receiver below (Open only spawns the loop).
		if fn.Name() == "Dial" || fn.Name() == "Upgrade" {
			return "transport." + fn.Name() + " (network)"
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	switch {
	case named.Obj().Pkg().Path() == "repro/internal/server" && named.Obj().Name() == "Client":
		if fn.Name() == "Base" { // accessor, no HTTP
			return ""
		}
		return "server.Client." + fn.Name() + " (HTTP)"
	case named.Obj().Pkg().Path() == "repro/internal/repo" && named.Obj().Name() == "Repo":
		if !diskRepoMethods[fn.Name()] { // index-only accessors are lock-cheap
			return ""
		}
		return "repo.Repo." + fn.Name() + " (disk)"
	case named.Obj().Pkg().Path() == "repro/internal/transport" && named.Obj().Name() == "Stream":
		if !blockingStreamMethods[fn.Name()] { // Connected is a lock-cheap accessor
			return ""
		}
		return "transport.Stream." + fn.Name() + " (stream)"
	}
	return ""
}

// blockingStreamMethods names the transport.Stream methods that can
// block on the network or the send window; holding a lock across them
// stalls every goroutine queued behind it when a peer goes slow.
var blockingStreamMethods = map[string]bool{
	"Send": true, "Call": true, "Ping": true, "Close": true,
}

// diskRepoMethods names the repo.Repo methods that perform file I/O;
// the rest only read the in-memory index.
var diskRepoMethods = map[string]bool{
	"Put": true, "PutDigest": true, "Get": true, "Delete": true,
	"Verify": true, "GC": true,
}
