// Package driver loads and type-checks this module's packages and
// runs vbslint analyzers over them.
//
// The loader shells out to `go list -export -deps -json`, parses the
// listed source files with go/parser, and type-checks them with
// go/types against the compiled export data the go command already
// produced — the same strategy golang.org/x/tools/go/packages uses,
// reduced to what a single-module repository with no third-party
// imports needs. Test packages (in-package variants and external
// _test packages) are loaded when requested, so analyzers see the
// whole tree CI compiles.
//
// Findings can be suppressed at the line that triggers them (or the
// line above) with a directive comment naming the analyzers:
//
//	//vbslint:ignore errwrap this %v is deliberate: the error is logged, never matched
//
// A reason is required: a suppression without an argument is itself
// a finding.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path as go list reports it; test variants
	// keep their bracketed form (e.g. "p_test [p.test]").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Finding is one diagnostic that survived directive filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats a finding the way compilers do, with the analyzer
// name appended: path:line:col: message (analyzer).
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// A Target is one package selected for analysis by NewLoader.
type Target struct {
	// ImportPath is the path as go list reports it (test variants keep
	// their bracketed form).
	ImportPath string
	Dir        string
	GoFiles    []string
	// ImportMap remaps source-level import paths for test variants.
	ImportMap map[string]string
}

// A Loader type-checks source against the export index of one
// `go list -export` run. It is not safe for concurrent use.
type Loader struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	gc      types.Importer    // shared gc-export-data importer
}

// NewLoader runs `go list -export -deps -json` in dir over patterns
// (plus their test packages when tests is set) and returns a loader
// whose export index covers every listed dependency, together with
// the non-dependency packages selected for analysis. Callers with
// sources outside the module (fixtures) can type-check them against
// the index with Check.
func NewLoader(dir string, tests bool, patterns ...string) (*Loader, []Target, error) {
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,ForTest,ImportMap"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("driver: go list: %w\n%s", err, stderr.String())
	}

	ld := &Loader{fset: token.NewFileSet(), exports: make(map[string]string)}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(f)
	})

	var entries []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
		entries = append(entries, p)
	}

	// An in-package test variant "p [p.test]" contains p's files plus
	// its _test.go files; analyzing the plain p too would double every
	// finding in the shared files.
	superseded := make(map[string]bool)
	for _, p := range entries {
		if p.ForTest != "" && strings.TrimSuffix(p.ImportPath, " ["+p.ForTest+".test]") == p.ForTest {
			superseded[p.ForTest] = true
		}
	}
	var targets []Target
	for _, p := range entries {
		switch {
		case p.DepOnly, superseded[p.ImportPath]:
		case strings.HasSuffix(p.ImportPath, ".test"):
			// The synthesized test-main package; its only file lives in
			// the build cache and tests nothing of ours.
		case len(p.GoFiles) == 0 || p.Dir == "":
		default:
			targets = append(targets, Target{
				ImportPath: p.ImportPath,
				Dir:        p.Dir,
				GoFiles:    p.GoFiles,
				ImportMap:  p.ImportMap,
			})
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return ld, targets, nil
}

// Load loads, parses and type-checks the packages matched by patterns
// in the module at dir. With tests set, in-package and external test
// packages are included.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	ld, targets, err := NewLoader(dir, tests, patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := ld.Check(t.ImportPath, t.Dir, t.GoFiles, t.ImportMap)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// resolver adapts the shared gc importer to one package's ImportMap
// (test variants remap some imports to their test builds).
type resolver struct {
	ld   *Loader
	imap map[string]string
}

func (r resolver) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if m, ok := r.imap[path]; ok {
		path = m
	}
	if _, ok := r.ld.exports[path]; !ok {
		// A bracketed test variant with no export data of its own falls
		// back to the plain package (no test-induced import cycles in
		// this module).
		if i := strings.Index(path, " ["); i >= 0 {
			path = path[:i]
		}
	}
	return r.ld.gc.Import(path)
}

// Check parses files (relative names are joined to dir) and
// type-checks them as package path, resolving imports through imap
// and then the loader's export index. Type errors are hard failures:
// the tree under lint must compile.
func (ld *Loader) Check(path, dir string, files []string, imap map[string]string) (*Package, error) {
	asts := make([]*ast.File, 0, len(files))
	for _, f := range files {
		name := f
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, f)
		}
		af, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var terrs []error
	conf := types.Config{
		Importer: resolver{ld: ld, imap: imap},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, asts, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("driver: type-checking %s: %w (and %d more)", path, terrs[0], len(terrs)-1)
	}
	return &Package{Path: path, Fset: ld.fset, Files: asts, Types: tpkg, Info: info}, nil
}

// Run applies every analyzer to every package and returns the
// findings that no //vbslint:ignore directive suppressed, sorted by
// position. Malformed directives (no analyzer list, or no reason)
// are returned as findings themselves.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sup, bad := directives(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.matches(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// suppressions records, per file and line, which analyzers an ignore
// directive names ("all" suppresses every analyzer).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(analyzer string, pos token.Position) bool {
	names := s[pos.Filename][pos.Line]
	return names[analyzer] || names["all"]
}

const ignorePrefix = "vbslint:ignore"

// directives scans a package's comments for //vbslint:ignore lines.
// A directive suppresses named analyzers on its own line and the line
// below (so it works both trailing and standalone).
func directives(pkg *Package) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "vbslint",
						Pos:      pos,
						Message:  "malformed //vbslint:ignore: want analyzer name(s) and a reason",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				// The directive covers its own line and the next: a
				// standalone comment suppresses the statement below it.
				for _, l := range []int{pos.Line, pos.Line + 1} {
					names := lines[l]
					if names == nil {
						names = make(map[string]bool)
						lines[l] = names
					}
					for _, n := range strings.Split(fields[0], ",") {
						names[n] = true
					}
				}
			}
		}
	}
	return sup, bad
}
