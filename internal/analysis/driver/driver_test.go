package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestDirectives(t *testing.T) {
	src := `package p

//vbslint:ignore errwrap deliberate: logged, never matched
var a = 1

var b = 2 //vbslint:ignore errwrap,lockio two analyzers, one reason

//vbslint:ignore errwrap
var c = 3

//vbslint:ignore all everything on the next line is sanctioned
var d = 4
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
	sup, bad := directives(pkg)

	if len(bad) != 1 {
		t.Fatalf("malformed directives: got %d findings, want 1: %v", len(bad), bad)
	}
	if bad[0].Pos.Line != 8 {
		t.Errorf("malformed directive reported at line %d, want 8", bad[0].Pos.Line)
	}

	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	checks := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"errwrap", 4, true},  // standalone directive covers next line
		{"errwrap", 3, true},  // and its own line
		{"errwrap", 5, false}, // but not two lines down
		{"lockio", 4, false},  // only named analyzers
		{"errwrap", 6, true},  // trailing directive covers its line
		{"lockio", 6, true},   // comma-separated list
		{"poolescape", 6, false},
		{"ctxclient", 12, true}, // "all" suppresses every analyzer
	}
	for _, c := range checks {
		if got := sup.matches(c.analyzer, at(c.line)); got != c.want {
			t.Errorf("matches(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}
