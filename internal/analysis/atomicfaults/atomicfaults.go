// Package atomicfaults enforces that struct fields with sync/atomic
// types are touched only through their atomic methods.
//
// Fields like repo.Repo's faults arming pointer (atomic.Pointer
// [Faults]) and the gateway's traffic counters are documented
// atomic-only: every access must go through Load/Store/Add/Swap/
// CompareAndSwap. Any other appearance of the field — copying it into
// a variable, assigning over it, comparing it, passing it by value —
// either tears the value out of the atomicity domain or races with
// concurrent users, and go vet's copylocks only catches the subset
// that copies. This analyzer flags every non-method access.
package atomicfaults

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfaults analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfaults",
	Doc:  "sync/atomic-typed field accessed without its atomic methods (Load/Store/Add/Swap/CompareAndSwap)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// First pass: selectors sanctioned as the receiver of an atomic
		// method call or method value (x.field.Load(), x.field.Store).
		allowed := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			outer, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[outer]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			if inner, ok := outer.X.(*ast.SelectorExpr); ok && isAtomic(pass.TypeOf(inner)) {
				allowed[inner] = true
			}
			return true
		})
		// Second pass: every other field selector of an atomic type.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || allowed[sel] {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			t := selection.Obj().Type()
			if !isAtomic(t) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s has type %s and is atomic-only; access it through its atomic methods, never directly",
				sel.Sel.Name, types.TypeString(t, nil))
			return true
		})
	}
	return nil, nil
}

// isAtomic reports whether t (or *t) is a sync/atomic type.
func isAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}
