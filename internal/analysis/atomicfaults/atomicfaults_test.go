package atomicfaults_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfaults"
)

func TestAtomicfaults(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicfaults.Analyzer, "atomicfaults")
}
