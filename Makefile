GO ?= go

.PHONY: all build test lint race bench bench-smoke bench-serve persist-smoke cluster-smoke chaos-smoke chaos-soak

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs cmd/vbslint — the in-repo invariant analyzers (errwrap,
# ctxclient, poolescape, lockio, atomicfaults) plus go vet — over the
# whole tree, tests included; staticcheck rides along when installed.
lint:
	$(GO) run ./cmd/vbslint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

race:
	$(GO) test -race ./internal/server/... ./internal/repo/ ./internal/cluster/ ./internal/chaos/ ./internal/controller/ ./internal/sched/ ./internal/core/ ./internal/devirt/ ./internal/jobs/ ./internal/metrics/ ./internal/transport/

# bench runs the decode scoreboard benchmarks and refreshes the
# committed perf baseline BENCH_decode.json (benchmark name -> ns/op,
# MB/s, B/op, allocs/op). Commit the refreshed file with perf PRs so
# the repo keeps a trajectory.
# Two steps (not a pipeline) so a failing benchmark run cannot
# silently overwrite the baseline with partial results.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkDecode$$|BenchmarkParallelDecode$$' -benchmem -count=1 . > bench.out
	$(GO) run ./cmd/benchjson -out BENCH_decode.json < bench.out
	rm -f bench.out

# bench-smoke is the CI guard: every decode benchmark must still run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDecode$$|BenchmarkParallelDecode$$' -benchtime 1x .

# bench-serve refreshes the committed serve-path baseline
# BENCH_serve.json with a vbsload mix against a real daemon.
bench-serve:
	./scripts/bench_serve.sh

# persist-smoke proves the vbsd -data-dir durability loop against a
# real daemon and a SIGKILL (see scripts/persistence_smoke.sh).
persist-smoke:
	./scripts/persistence_smoke.sh

# cluster-smoke proves the vbsgw sharded-serving loop: 3 nodes +
# gateway, replicated loads, an out-of-band import, byte-identical
# serving, a vbsload mix under a strict error budget, and a fourth
# node joined under live load with a zero error budget
# (see scripts/cluster_smoke.sh).
cluster-smoke:
	./scripts/cluster_smoke.sh

# chaos-smoke runs the CI-sized chaos recipes (nodekill, corruptblob,
# nodeadd) against real vbsd subprocesses: fault injection under live
# traffic, then fleet-wide invariant checks (see scripts/chaos_smoke.sh).
chaos-smoke:
	./scripts/chaos_smoke.sh

# chaos-soak is the full-length run of every recipe — minutes, not CI.
chaos-soak:
	$(GO) run ./cmd/vbschaos -recipe all
